package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-spaced boundaries covering 0.1 ms to 10 s,
// five buckets per decade (ratio 10^(1/5) ≈ 1.58×). Five decades resolve
// the paper's human-perception thresholds — 20 ms, 50 ms, 150 ms (§3) —
// each into its own bucket, while still spanning sub-millisecond fabric
// RTTs (Table 4's 550 µs) and multi-second pathologies. Two extra buckets
// catch underflow (<0.1 ms) and overflow (>10 s).
const (
	histDecades      = 5
	histPerDecade    = 5
	histBoundaryLow  = 100 * time.Microsecond
	numBoundaries    = histDecades*histPerDecade + 1 // 0.1ms, ..., 10s inclusive
	numBuckets       = numBoundaries + 1             // plus overflow
	histBucketsTotal = numBuckets
)

// histBoundaries[i] is the inclusive upper bound of bucket i, in
// nanoseconds. Bucket numBoundaries (the last) is the +Inf overflow.
var histBoundaries = func() [numBoundaries]int64 {
	var b [numBoundaries]int64
	low := float64(histBoundaryLow.Nanoseconds())
	for i := range b {
		b[i] = int64(math.Round(low * math.Pow(10, float64(i)/histPerDecade)))
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram with a lock-free Observe:
// one binary search over precomputed integer boundaries plus three atomic
// adds. Snapshots are consistent enough for live monitoring (count and sum
// may momentarily disagree with the buckets by in-flight observations).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram. Histograms are normally obtained
// from a Registry, which names them.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex locates the bucket for a duration of ns nanoseconds.
func bucketIndex(ns int64) int {
	// Binary search over the boundary table: buckets[i] holds observations
	// with ns <= histBoundaries[i] (and > histBoundaries[i-1]).
	lo, hi := 0, numBoundaries
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= histBoundaries[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // numBoundaries = overflow
}

// Observe records one latency observation. Negative durations clamp to
// zero. Safe for any number of concurrent callers; never blocks.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// Reset empties the histogram.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram, with the
// standard interactive percentiles precomputed.
type HistogramSnapshot struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	// Buckets[i] counts observations at or under BoundarySeconds(i); the
	// final entry is the overflow bucket.
	Buckets [histBucketsTotal]int64 `json:"buckets"`
	P50     float64                 `json:"p50_seconds"`
	P95     float64                 `json:"p95_seconds"`
	P99     float64                 `json:"p99_seconds"`
}

// NumHistogramBuckets reports the bucket count of every histogram.
func NumHistogramBuckets() int { return histBucketsTotal }

// BoundarySeconds reports bucket i's inclusive upper bound in seconds;
// the final bucket reports +Inf.
func BoundarySeconds(i int) float64 {
	if i >= numBoundaries {
		return math.Inf(1)
	}
	return float64(histBoundaries[i]) / 1e9
}

// Snapshot copies the histogram and computes p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumSeconds = float64(h.sum.Load()) / 1e9
	var total int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		total += n
	}
	// Percentiles come from the bucket distribution (count may trail the
	// bucket total by concurrent in-flight observations; use the total).
	s.P50 = quantileFromBuckets(s.Buckets, total, 0.50)
	s.P95 = quantileFromBuckets(s.Buckets, total, 0.95)
	s.P99 = quantileFromBuckets(s.Buckets, total, 0.99)
	return s
}

// Quantile estimates the q-quantile (0..1) in seconds from the live
// buckets.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().quantile(q)
}

// Delta reports the histogram activity between prev and s — the
// observations recorded in the window separating two scrapes — with
// percentiles recomputed over just that window. Scrapers (cmd/slimstat)
// use it to render per-interval rather than since-boot latency. A counter
// reset between scrapes (negative delta) yields s itself.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	if s.Count < prev.Count {
		return s // registry was reset between scrapes
	}
	var d HistogramSnapshot
	d.Count = s.Count - prev.Count
	d.SumSeconds = s.SumSeconds - prev.SumSeconds
	var total int64
	for i := range s.Buckets {
		n := s.Buckets[i] - prev.Buckets[i]
		if n < 0 {
			n = 0
		}
		d.Buckets[i] = n
		total += n
	}
	d.P50 = quantileFromBuckets(d.Buckets, total, 0.50)
	d.P95 = quantileFromBuckets(d.Buckets, total, 0.95)
	d.P99 = quantileFromBuckets(d.Buckets, total, 0.99)
	return d
}

func (s HistogramSnapshot) quantile(q float64) float64 {
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	return quantileFromBuckets(s.Buckets, total, q)
}

// quantileFromBuckets interpolates a quantile inside the first bucket whose
// cumulative count reaches rank. Within a bucket the distribution is
// assumed uniform between the bucket's bounds, which bounds the error at
// one bucket ratio (≈1.58×) — ample for live p50/p95/p99 monitoring.
func quantileFromBuckets(buckets [histBucketsTotal]int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = BoundarySeconds(i - 1)
			}
			upper := BoundarySeconds(i)
			if math.IsInf(upper, 1) {
				// Overflow bucket: report its lower bound; there is no
				// upper bound to interpolate toward.
				return BoundarySeconds(numBoundaries - 1)
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + frac*(upper-lower)
		}
		cum += n
	}
	return BoundarySeconds(numBoundaries - 1)
}
