package hostmon

import (
	"encoding/json"
	"io"
	"net/http"

	"slim/internal/obs/flight"
)

// Status is the /debug/hostmon document: the monitor's configuration,
// the most recent sample, the full sample ring, live stall windows, and
// (when a profiler is attached) the latest top-N self-time table.
type Status struct {
	Enabled      bool   `json:"enabled"`
	IntervalNs   int64  `json:"interval_ns"`
	GCPauseThrNs int64  `json:"gc_pause_threshold_ns"`
	CPUStallNs   int64  `json:"cpu_stall_threshold_ns"`
	Last         Sample `json:"last"`
	// Samples is the ring, oldest first; Windows the live stall windows.
	Samples []Sample            `json:"samples"`
	Windows []flight.HostWindow `json:"windows,omitempty"`
	// Profile is the latest profile window's top-N self-time by package
	// (absent without a profiler).
	Profile []PkgSelf `json:"profile,omitempty"`
}

// StatusWith builds the full document, including prof's top-N table when
// prof is non-nil.
func (m *Monitor) StatusWith(prof *Profiler) Status {
	st := Status{
		Enabled:      m.enabled.Load(),
		IntervalNs:   int64(m.cfg.Interval),
		GCPauseThrNs: int64(m.cfg.GCPauseThreshold),
		CPUStallNs:   int64(m.cfg.CPUStallThreshold),
		Last:         m.Last(),
		Samples:      m.Ring(),
		Windows:      m.Windows(m.cfg.Clock()),
	}
	if prof != nil {
		st.Profile = prof.Top()
	}
	return st
}

// WriteJSON serializes the current status as indented JSON.
func (m *Monitor) WriteJSON(w io.Writer, prof *Profiler) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.StatusWith(prof))
}

// Handler serves the monitor (and optionally profiler) status as
// /debug/hostmon JSON.
func (m *Monitor) Handler(prof *Profiler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = m.WriteJSON(w, prof)
	})
}
