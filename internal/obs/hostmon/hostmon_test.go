package hostmon

import (
	"math"
	"runtime/metrics"
	"sync/atomic"
	"testing"
	"time"

	"slim/internal/obs"
)

// testClock is a manually advanced monitor clock.
type testClock struct{ ns atomic.Int64 }

func (c *testClock) now() time.Duration  { return time.Duration(c.ns.Load()) }
func (c *testClock) set(d time.Duration) { c.ns.Store(int64(d)) }

// newTestMonitor builds an instrumented monitor on a manual clock with
// tight thresholds.
func newTestMonitor(t *testing.T) (*Monitor, *testClock, *obs.Registry) {
	t.Helper()
	clk := &testClock{}
	reg := obs.NewRegistry(obs.DomainWall)
	m := New(Config{
		Interval:          100 * time.Millisecond,
		RingSize:          8,
		GCPauseThreshold:  10 * time.Millisecond,
		CPUStallThreshold: 10 * time.Millisecond,
		WindowRetention:   time.Minute,
		MaxWindows:        4,
		Clock:             clk.now,
	}).Instrument(reg)
	return m, clk, reg
}

// TestSampleAndSeries: one tick populates the slim_runtime_* series and
// the ring.
func TestSampleAndSeries(t *testing.T) {
	m, clk, reg := newTestMonitor(t)
	clk.set(100 * time.Millisecond)
	s := m.SampleNow()
	if s.HeapBytes == 0 || s.Goroutines == 0 {
		t.Fatalf("implausible sample: %+v", s)
	}
	snap := reg.Snapshot()
	if snap.Gauges["slim_runtime_heap_bytes"] == 0 {
		t.Error("heap gauge not published")
	}
	if snap.Gauges["slim_runtime_goroutines"] == 0 {
		t.Error("goroutine gauge not published")
	}
	if snap.Counters["slim_runtime_samples_total"] != 1 {
		t.Error("sample counter not bumped")
	}
	clk.set(200 * time.Millisecond)
	m.SampleNow()
	ring := m.Ring()
	if len(ring) != 2 || ring[0].T != 100*time.Millisecond || ring[1].T != 200*time.Millisecond {
		t.Fatalf("ring = %+v", ring)
	}
	if last := m.Last(); last.T != 200*time.Millisecond {
		t.Errorf("last sample T = %v", last.T)
	}
}

// TestRingWraps: the ring keeps only the newest RingSize samples.
func TestRingWraps(t *testing.T) {
	m, clk, _ := newTestMonitor(t)
	for i := 1; i <= 20; i++ {
		clk.set(time.Duration(i) * 100 * time.Millisecond)
		m.SampleNow()
	}
	ring := m.Ring()
	if len(ring) != 8 {
		t.Fatalf("ring len = %d, want 8", len(ring))
	}
	if ring[0].T != 1300*time.Millisecond || ring[7].T != 2000*time.Millisecond {
		t.Fatalf("ring window = [%v, %v]", ring[0].T, ring[7].T)
	}
}

// TestTickLagWindow: a tick that fires late records a "cpu" stall window
// covering the gap — the sampler's own starvation as evidence.
func TestTickLagWindow(t *testing.T) {
	m, clk, reg := newTestMonitor(t)
	clk.set(100 * time.Millisecond)
	m.SampleNow() // warm-up: histogram deltas and lag are unreliable
	clk.set(200 * time.Millisecond)
	m.SampleNow() // on schedule: no lag
	wins := m.Windows(clk.now())
	if len(wins) != 0 {
		t.Fatalf("windows after on-time ticks: %+v", wins)
	}
	// 150 ms late: lag 150ms >= 10ms threshold.
	clk.set(450 * time.Millisecond)
	m.SampleNow()
	wins = m.Windows(clk.now())
	if len(wins) != 1 {
		t.Fatalf("windows = %+v, want 1", wins)
	}
	w := wins[0]
	if w.Kind != "cpu" || w.Start != 200*time.Millisecond || w.End != 450*time.Millisecond {
		t.Fatalf("window = %+v", w)
	}
	if w.WorstNs < int64(150*time.Millisecond) {
		t.Errorf("worst = %v, want >= 150ms", time.Duration(w.WorstNs))
	}
	if got := reg.Snapshot().Counters[`slim_runtime_host_windows_total{kind="cpu"}`]; got != 1 {
		t.Errorf("cpu window counter = %d, want 1", got)
	}

	// A second late tick touching the first window merges instead of
	// appending.
	clk.set(700 * time.Millisecond)
	m.SampleNow()
	wins = m.Windows(clk.now())
	if len(wins) != 1 {
		t.Fatalf("merged windows = %+v, want 1", wins)
	}
	if wins[0].End != 700*time.Millisecond || wins[0].Start != 200*time.Millisecond {
		t.Fatalf("merged window = %+v", wins[0])
	}
}

// TestWindowRetention: Windows filters out stalls older than the
// retention horizon, and MaxWindows bounds the kept set.
func TestWindowRetention(t *testing.T) {
	m, clk, _ := newTestMonitor(t)
	clk.set(100 * time.Millisecond)
	m.SampleNow()
	now := 200 * time.Millisecond
	// Ten disjoint stalls (interleave on-time ticks to break merging).
	for i := 0; i < 10; i++ {
		now += 300 * time.Millisecond // 200ms late → cpu window
		clk.set(now)
		m.SampleNow()
		now += 100 * time.Millisecond // on schedule → closes the merge run
		clk.set(now)
		m.SampleNow()
	}
	wins := m.Windows(clk.now())
	if len(wins) != 4 {
		t.Fatalf("kept windows = %d, want MaxWindows=4", len(wins))
	}
	// An hour later every window is stale.
	if wins := m.Windows(clk.now() + time.Hour); len(wins) != 0 {
		t.Fatalf("stale windows survived retention: %+v", wins)
	}
}

// TestHistDelta exercises the cumulative-histogram delta logic against
// hand-built runtime/metrics histograms.
func TestHistDelta(t *testing.T) {
	buckets := []float64{0, 0.001, 0.010, 0.100, 1.0}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{5, 2, 0, 0},
		Buckets: buckets,
	}
	var prev []uint64
	if got := histDelta(h, &prev, false); got != 0 {
		t.Fatalf("warm-up delta = %v, want 0", got)
	}
	// One new count in bucket [10ms, 100ms): worst = 100ms upper edge.
	h.Counts = []uint64{5, 2, 1, 0}
	if got := histDelta(h, &prev, true); got != 100*time.Millisecond {
		t.Fatalf("delta = %v, want 100ms", got)
	}
	// No new counts → 0.
	if got := histDelta(h, &prev, true); got != 0 {
		t.Fatalf("idle delta = %v, want 0", got)
	}
	// +Inf upper edge falls back to the lower edge.
	hInf := &metrics.Float64Histogram{
		Counts:  []uint64{0, 1},
		Buckets: []float64{0, 0.050, math.Inf(1)},
	}
	var prev2 []uint64
	histDelta(hInf, &prev2, false)
	hInf.Counts = []uint64{0, 2}
	if got := histDelta(hInf, &prev2, true); got != 50*time.Millisecond {
		t.Fatalf("inf-bucket delta = %v, want 50ms", got)
	}
}

// TestZeroAllocSample pins the steady-state sample path: after warm-up
// (first reads size the runtime/metrics buffers), SampleNow allocates
// nothing — the budget alloc-guard enforces.
func TestZeroAllocSample(t *testing.T) {
	m, clk, _ := newTestMonitor(t)
	var now time.Duration
	tick := func() {
		now += 100 * time.Millisecond
		clk.set(now)
		m.SampleNow()
	}
	tick()
	tick()
	tick()
	if n := testing.AllocsPerRun(100, tick); n != 0 {
		t.Errorf("SampleNow allocates %.1f/op, want 0", n)
	}
}

// TestStartClose: the sampling loop starts, samples, and shuts down
// without leaking its goroutine (Close waits for exit).
func TestStartClose(t *testing.T) {
	m := New(Config{Interval: 5 * time.Millisecond}).Instrument(obs.NewRegistry(obs.DomainWall))
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(m.Ring()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(m.Ring()) == 0 {
		t.Fatal("loop never sampled")
	}
	m.Close()
	m.Close() // idempotent
	n := len(m.Ring())
	time.Sleep(20 * time.Millisecond)
	if got := len(m.Ring()); got != n {
		t.Fatalf("loop still sampling after Close: %d -> %d", n, got)
	}
	// Restartable.
	m.Start()
	m.Close()
}

// TestDisabledTicks: a disabled monitor's loop keeps running but touches
// nothing.
func TestDisabledTicks(t *testing.T) {
	m := New(Config{Interval: 5 * time.Millisecond})
	m.SetEnabled(false)
	m.Start()
	defer m.Close()
	time.Sleep(30 * time.Millisecond)
	if got := len(m.Ring()); got != 0 {
		t.Fatalf("disabled monitor sampled %d times", got)
	}
}
