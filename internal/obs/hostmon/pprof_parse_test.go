package hostmon

import (
	"bytes"
	"compress/gzip"
	"testing"
	"time"

	"slim/internal/obs"
)

// protoBuf is a minimal protobuf writer for building test profiles.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}
func (p *protoBuf) tag(num, wire int) { p.varint(uint64(num<<3 | wire)) }
func (p *protoBuf) uintField(num int, v uint64) {
	p.tag(num, 0)
	p.varint(v)
}
func (p *protoBuf) bytesField(num int, body []byte) {
	p.tag(num, 2)
	p.varint(uint64(len(body)))
	p.b = append(p.b, body...)
}
func (p *protoBuf) packedField(num int, vals ...uint64) {
	var inner protoBuf
	for _, v := range vals {
		inner.varint(v)
	}
	p.bytesField(num, inner.b)
}

// buildProfile assembles a two-function CPU profile:
//
//	sample 1: leaf slim/internal/server.(*Server).Handle, 30 ms cpu
//	sample 2: leaf runtime.mallocgc, 10 ms cpu
func buildProfile() []byte {
	var p protoBuf
	// string_table: index 0 must be "".
	p.bytesField(6, nil)
	p.bytesField(6, []byte("slim/internal/server.(*Server).Handle"))
	p.bytesField(6, []byte("runtime.mallocgc"))
	// Functions.
	var f1, f2 protoBuf
	f1.uintField(1, 1)
	f1.uintField(2, 1)
	p.bytesField(5, f1.b)
	f2.uintField(1, 2)
	f2.uintField(2, 2)
	p.bytesField(5, f2.b)
	// Locations, each with one Line pointing at its function.
	var l1, l2, line1, line2 protoBuf
	line1.uintField(1, 1)
	l1.uintField(1, 1)
	l1.bytesField(4, line1.b)
	p.bytesField(4, l1.b)
	line2.uintField(1, 2)
	l2.uintField(1, 2)
	l2.bytesField(4, line2.b)
	p.bytesField(4, l2.b)
	// Samples: [count, cpu-ns] values, leaf location first.
	var s1, s2 protoBuf
	s1.packedField(1, 1, 2) // stack: Handle ← mallocgc caller order
	s1.packedField(2, 3, 30_000_000)
	p.bytesField(2, s1.b)
	s2.packedField(1, 2)
	s2.packedField(2, 1, 10_000_000)
	p.bytesField(2, s2.b)
	p.uintField(12, 10_000_000) // period
	return p.b
}

// TestSelfTimeByPkg parses the synthetic profile, raw and gzipped.
func TestSelfTimeByPkg(t *testing.T) {
	raw := buildProfile()
	for _, gz := range []bool{false, true} {
		data := raw
		if gz {
			var buf bytes.Buffer
			w := gzip.NewWriter(&buf)
			w.Write(raw)
			w.Close()
			data = buf.Bytes()
		}
		self, err := SelfTimeByPkg(data)
		if err != nil {
			t.Fatalf("gz=%v: %v", gz, err)
		}
		if got := self["slim/internal/server"]; got != 30_000_000 {
			t.Errorf("gz=%v server self = %d, want 30ms", gz, got)
		}
		if got := self["runtime"]; got != 10_000_000 {
			t.Errorf("gz=%v runtime self = %d, want 10ms", gz, got)
		}
	}
	if _, err := SelfTimeByPkg(nil); err == nil {
		t.Error("empty profile parsed")
	}
	if _, err := SelfTimeByPkg([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage profile parsed")
	}
}

// TestPkgOf pins the package-truncation rules.
func TestPkgOf(t *testing.T) {
	cases := map[string]string{
		"slim/internal/server.(*Server).Handle": "slim/internal/server",
		"runtime.mallocgc":                      "runtime",
		"main.main":                             "main",
		"slim/internal/obs/flight.Attribute":    "slim/internal/obs/flight",
		"crosscall":                             "crosscall",
		"(unknown)":                             "(unknown)",
	}
	for in, want := range cases {
		if got := pkgOf(in); got != want {
			t.Errorf("pkgOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestProfilerStoreAndGauges drives the ring and gauge rotation with
// synthetic windows (no live profiling needed).
func TestProfilerStoreAndGauges(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	p := NewProfiler(50*time.Millisecond, 2, 2).Instrument(reg)
	p.store(ProfileWindow{SelfByPkg: map[string]int64{
		"slim/internal/server": 30_000_000,
		"runtime":              10_000_000,
		"slim/internal/fb":     5_000_000,
	}})
	snap := reg.Snapshot()
	if got := snap.Gauges[`slim_profile_self_ms{pkg="slim/internal/server"}`]; got != 30 {
		t.Errorf("server gauge = %d, want 30", got)
	}
	if _, ok := snap.Gauges[`slim_profile_self_ms{pkg="slim/internal/fb"}`]; ok {
		t.Error("fb gauge published beyond top-N")
	}
	top := p.Top()
	if len(top) != 2 || top[0].Pkg != "slim/internal/server" || top[1].Pkg != "runtime" {
		t.Fatalf("top = %+v", top)
	}
	// A new window with a different mix rotates the published set.
	p.store(ProfileWindow{SelfByPkg: map[string]int64{
		"slim/internal/fb": 40_000_000,
		"runtime":          1_000_000,
	}})
	snap = reg.Snapshot()
	if _, ok := snap.Gauges[`slim_profile_self_ms{pkg="slim/internal/server"}`]; ok {
		t.Error("stale server gauge survived rotation")
	}
	if got := snap.Gauges[`slim_profile_self_ms{pkg="slim/internal/fb"}`]; got != 40 {
		t.Errorf("fb gauge = %d, want 40", got)
	}
	// Ring capacity 2: a third store evicts the first.
	p.store(ProfileWindow{SelfByPkg: map[string]int64{"runtime": 1}})
	if got := reg.Snapshot().Counters["slim_profile_windows_total"]; got != 3 {
		t.Errorf("window counter = %d, want 3", got)
	}
	p.Evict()
	for name := range reg.Snapshot().Gauges {
		if len(name) > 20 && name[:20] == "slim_profile_self_ms" {
			t.Errorf("gauge %q survived Evict", name)
		}
	}
}

// TestProfilerLiveCapture smoke-tests a real runtime/pprof window: the
// capture completes, lands in the ring, and — given CPU burn — parses
// into a non-empty self-time table.
func TestProfilerLiveCapture(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	p := NewProfiler(200*time.Millisecond, 2, 4).Instrument(reg)
	stopBurn := make(chan struct{})
	go func() { // give the profiler something to sample
		x := 0
		for {
			select {
			case <-stopBurn:
				return
			default:
				x++
			}
		}
	}()
	defer close(stopBurn)
	if !p.CaptureWindow(nil) {
		t.Fatal("capture failed (another profile active?)")
	}
	w := p.Latest()
	if len(w.Data) == 0 {
		t.Fatal("no profile data captured")
	}
	if w.SelfByPkg == nil {
		t.Skip("no samples in 200ms window (loaded CI host)")
	}
	if len(p.Top()) == 0 {
		t.Error("no top packages from a live profile")
	}
}

// TestProfilerStartClose: loop lifecycle — Start captures windows, Close
// stops promptly even mid-window, and both are restart-safe.
func TestProfilerStartClose(t *testing.T) {
	p := NewProfiler(30*time.Millisecond, 2, 4)
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(p.Latest().Data) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung")
	}
	p.Close() // idempotent
	p.Start()
	p.Close()
}
