package hostmon

import (
	"bytes"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"slim/internal/obs"
)

// Profiler keeps CPU profiling continuously on in short windows: each
// window is captured with runtime/pprof, stored in a rotating in-memory
// ring of serialized profiles, parsed, and summarized as top-N self-time
// by package gauges (slim_profile_self_ms{pkg=...}). When an incident
// fires, Latest() is the profile that covers it — no "can you reproduce
// it with profiling on?" round trip.
type Profiler struct {
	window  time.Duration
	ringCap int
	topN    int
	enabled atomic.Bool

	mu     sync.Mutex
	ring   []ProfileWindow
	reg    *obs.Registry
	pubbed map[string]string // pkg → published gauge name

	windowsC *obs.Counter
	errorsC  *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// ProfileWindow is one captured CPU-profile window.
type ProfileWindow struct {
	// Start/End bound the window in wall time.
	Start, End time.Time
	// Data is the gzipped pprof protobuf.
	Data []byte
	// SelfByPkg is self-time by package, parsed from Data (nil when the
	// profile could not be parsed).
	SelfByPkg map[string]int64
}

// NewProfiler returns a stopped profiler capturing windows of the given
// length (default 5 s) into a ring of ringSize entries (default 4),
// publishing the top topN packages (default 8).
func NewProfiler(window time.Duration, ringSize, topN int) *Profiler {
	if window <= 0 {
		window = 5 * time.Second
	}
	if ringSize <= 0 {
		ringSize = 4
	}
	if topN <= 0 {
		topN = 8
	}
	p := &Profiler{window: window, ringCap: ringSize, topN: topN}
	p.enabled.Store(true)
	return p
}

// Instrument makes reg the home of the profiler's series: the rotating
// top-N self-time gauges plus slim_profile_windows_total and
// slim_profile_errors_total.
func (p *Profiler) Instrument(reg *obs.Registry) *Profiler {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reg = reg
	p.pubbed = make(map[string]string)
	p.windowsC = reg.Counter("slim_profile_windows_total")
	p.errorsC = reg.Counter("slim_profile_errors_total")
	return p
}

// Window reports the profile-window length.
func (p *Profiler) Window() time.Duration { return p.window }

// SetWindow changes the profile-window length. Call it before Start; a
// running loop keeps its window. Non-positive values are ignored.
func (p *Profiler) SetWindow(d time.Duration) {
	if d > 0 && p.stop == nil {
		p.window = d
	}
}

// SetEnabled pauses or resumes capture; the loop keeps running but a
// disabled profiler skips StartCPUProfile entirely.
func (p *Profiler) SetEnabled(on bool) { p.enabled.Store(on) }

// Start launches the capture loop. Starting a started profiler panics.
func (p *Profiler) Start() {
	if p.stop != nil {
		panic("hostmon: Start on a running profiler")
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

// Close stops the capture loop, finishing any in-flight window, and
// waits for it. Closing a stopped profiler is a no-op.
func (p *Profiler) Close() {
	if p.stop == nil {
		return
	}
	close(p.stop)
	<-p.done
	p.stop, p.done = nil, nil
}

func (p *Profiler) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTimer(0)
	defer t.Stop()
	<-t.C
	for {
		if !p.enabled.Load() {
			t.Reset(p.window)
			select {
			case <-stop:
				return
			case <-t.C:
			}
			continue
		}
		p.CaptureWindow(stop)
		select {
		case <-stop:
			return
		default:
		}
	}
}

// CaptureWindow records one profile window, blocking for the window
// length (or until stop closes). It is exported for the incident
// engine's on-demand fallback; concurrent captures are serialized by the
// runtime (the loser counts an error and returns false).
func (p *Profiler) CaptureWindow(stop <-chan struct{}) bool {
	var buf bytes.Buffer
	start := time.Now()
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another profile is running (ours or /debug/pprof/profile).
		if p.errorsC != nil {
			p.errorsC.Inc()
		}
		t := time.NewTimer(p.window)
		defer t.Stop()
		select {
		case <-stop:
		case <-t.C:
		}
		return false
	}
	t := time.NewTimer(p.window)
	defer t.Stop()
	select {
	case <-stop:
	case <-t.C:
	}
	pprof.StopCPUProfile()
	w := ProfileWindow{Start: start, End: time.Now(), Data: buf.Bytes()}
	if self, err := SelfTimeByPkg(w.Data); err == nil {
		w.SelfByPkg = self
	} else if p.errorsC != nil {
		p.errorsC.Inc()
	}
	p.store(w)
	return true
}

// store appends the window to the ring and republishes the top-N gauges.
func (p *Profiler) store(w ProfileWindow) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ring) >= p.ringCap {
		copy(p.ring, p.ring[1:])
		p.ring = p.ring[:len(p.ring)-1]
	}
	p.ring = append(p.ring, w)
	if p.windowsC != nil {
		p.windowsC.Inc()
	}
	if p.reg == nil || w.SelfByPkg == nil {
		return
	}
	top := topPkgs(w.SelfByPkg, p.topN)
	// Retire packages that fell out of the top-N, publish the new set.
	live := make(map[string]bool, len(top))
	for _, e := range top {
		live[e.Pkg] = true
	}
	for pkg, name := range p.pubbed {
		if !live[pkg] {
			p.reg.Remove(name)
			delete(p.pubbed, pkg)
		}
	}
	for _, e := range top {
		name, ok := p.pubbed[e.Pkg]
		if !ok {
			name = `slim_profile_self_ms{pkg="` + quoteLabel(e.Pkg) + `"}`
			p.pubbed[e.Pkg] = name
		}
		p.reg.Gauge(name).Set(e.SelfNs / int64(time.Millisecond))
	}
}

// PkgSelf is one package's self-time in a profile window.
type PkgSelf struct {
	Pkg    string `json:"pkg"`
	SelfNs int64  `json:"self_ns"`
}

// topPkgs ranks self-time by package, descending, keeping n entries.
func topPkgs(self map[string]int64, n int) []PkgSelf {
	out := make([]PkgSelf, 0, len(self))
	for pkg, ns := range self {
		out = append(out, PkgSelf{Pkg: pkg, SelfNs: ns})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNs != out[j].SelfNs {
			return out[i].SelfNs > out[j].SelfNs
		}
		return out[i].Pkg < out[j].Pkg
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Latest returns the most recent complete profile window (zero Data when
// none has completed yet).
func (p *Profiler) Latest() ProfileWindow {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ring) == 0 {
		return ProfileWindow{}
	}
	return p.ring[len(p.ring)-1]
}

// Top returns the latest window's top-N packages by self-time.
func (p *Profiler) Top() []PkgSelf {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.ring) - 1; i >= 0; i-- {
		if p.ring[i].SelfByPkg != nil {
			return topPkgs(p.ring[i].SelfByPkg, p.topN)
		}
	}
	return nil
}

// Evict removes every published top-N gauge — registry hygiene for
// tests and shutdown.
func (p *Profiler) Evict() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for pkg, name := range p.pubbed {
		p.reg.Remove(name)
		delete(p.pubbed, pkg)
	}
}

// quoteLabel is strconv.Quote minus the surrounding quotes — reserved
// for package paths that somehow contain label-breaking characters.
func quoteLabel(s string) string {
	q := strconv.Quote(s)
	return q[1 : len(q)-1]
}
