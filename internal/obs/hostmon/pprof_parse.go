package hostmon

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Minimal pprof profile.proto reader. runtime/pprof emits gzipped
// protobuf; we need exactly one aggregate out of it — self time by
// package — so instead of vendoring a protobuf stack we walk the wire
// format by hand. Field numbers from profile.proto:
//
//	Profile:  sample_type=1  sample=2  location=4  function=5
//	          string_table=6  period=12
//	Sample:   location_id=1 (repeated uint64)  value=2 (repeated int64)
//	Location: id=1  line=4 (repeated Line)
//	Line:     function_id=1
//	Function: id=1  name=2 (string-table index)
//
// Self time is attributed to each sample's leaf location (first entry in
// location_id, by pprof convention), resolved leaf-inward through Line
// to a function name, then truncated to its package path.

var errPprof = errors.New("hostmon: malformed pprof data")

// uvarint decodes one varint at data[i:], returning the value and the
// next offset (-1 on truncation).
func uvarint(data []byte, i int) (uint64, int) {
	var v uint64
	var shift uint
	for ; i < len(data); i++ {
		b := data[i]
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
		if shift >= 64 {
			return 0, -1
		}
	}
	return 0, -1
}

// field decodes one protobuf field at data[i:]: field number, wire type,
// the field payload (varint value or length-delimited bytes), and the
// next offset (-1 on any malformation). Wire types 0 (varint), 1 (i64),
// 2 (bytes), and 5 (i32) cover everything profile.proto emits.
func field(data []byte, i int) (num int, wire int, val uint64, body []byte, next int) {
	key, i := uvarint(data, i)
	if i < 0 {
		return 0, 0, 0, nil, -1
	}
	num = int(key >> 3)
	wire = int(key & 7)
	switch wire {
	case 0:
		val, i = uvarint(data, i)
		return num, wire, val, nil, i
	case 1:
		if i+8 > len(data) {
			return 0, 0, 0, nil, -1
		}
		return num, wire, 0, nil, i + 8
	case 2:
		n, i := uvarint(data, i)
		if i < 0 || uint64(len(data)-i) < n {
			return 0, 0, 0, nil, -1
		}
		return num, wire, 0, data[i : i+int(n)], i + int(n)
	case 5:
		if i+4 > len(data) {
			return 0, 0, 0, nil, -1
		}
		return num, wire, 0, nil, i + 4
	}
	return 0, 0, 0, nil, -1
}

// packedOrOne appends the values of a repeated numeric field: wire type
// 2 is the packed encoding, wire type 0 a single element.
func packedOrOne(dst []uint64, wire int, val uint64, body []byte) ([]uint64, error) {
	if wire == 0 {
		return append(dst, val), nil
	}
	for i := 0; i < len(body); {
		v, n := uvarint(body, i)
		if n < 0 {
			return dst, errPprof
		}
		dst = append(dst, v)
		i = n
	}
	return dst, nil
}

// SelfTimeByPkg parses a (possibly gzipped) pprof CPU profile and
// returns self time in nanoseconds keyed by package path. The CPU value
// is the sample's second value when present (samples×period otherwise,
// per the sample_type convention).
func SelfTimeByPkg(data []byte) (map[string]int64, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty profile", errPprof)
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(strings.NewReader(string(data)))
		if err != nil {
			return nil, fmt.Errorf("hostmon: pprof gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("hostmon: pprof gunzip: %w", err)
		}
		data = raw
	}

	var strTab []string
	fnName := map[uint64]uint64{} // function id → name string index
	locFn := map[uint64]uint64{}  // location id → leaf function id
	type sample struct {
		leafLoc uint64
		cpuNs   int64
		count   int64
	}
	var samples []sample
	var period uint64

	for i := 0; i < len(data); {
		num, _, val, body, next := field(data, i)
		if next < 0 {
			return nil, errPprof
		}
		i = next
		switch num {
		case 2: // Sample
			var locs, vals []uint64
			for j := 0; j < len(body); {
				n2, w2, v2, b2, nx := field(body, j)
				if nx < 0 {
					return nil, errPprof
				}
				j = nx
				var err error
				switch n2 {
				case 1:
					if locs, err = packedOrOne(locs, w2, v2, b2); err != nil {
						return nil, err
					}
				case 2:
					if vals, err = packedOrOne(vals, w2, v2, b2); err != nil {
						return nil, err
					}
				}
			}
			if len(locs) == 0 {
				continue
			}
			s := sample{leafLoc: locs[0]}
			if len(vals) >= 2 {
				s.cpuNs = int64(vals[1])
			}
			if len(vals) >= 1 {
				s.count = int64(vals[0])
			}
			samples = append(samples, s)
		case 4: // Location
			var id, fn uint64
			for j := 0; j < len(body); {
				n2, _, v2, b2, nx := field(body, j)
				if nx < 0 {
					return nil, errPprof
				}
				j = nx
				switch n2 {
				case 1:
					id = v2
				case 4: // Line; first entry is the leaf-most line
					if fn == 0 {
						for k := 0; k < len(b2); {
							n3, _, v3, _, nx3 := field(b2, k)
							if nx3 < 0 {
								return nil, errPprof
							}
							k = nx3
							if n3 == 1 {
								fn = v3
								break
							}
						}
					}
				}
			}
			if id != 0 {
				locFn[id] = fn
			}
		case 5: // Function
			var id, name uint64
			for j := 0; j < len(body); {
				n2, _, v2, _, nx := field(body, j)
				if nx < 0 {
					return nil, errPprof
				}
				j = nx
				switch n2 {
				case 1:
					id = v2
				case 2:
					name = v2
				}
			}
			if id != 0 {
				fnName[id] = name
			}
		case 6: // string_table
			strTab = append(strTab, string(body))
		case 12: // period
			period = val
		}
	}

	self := make(map[string]int64)
	for _, s := range samples {
		name := "(unknown)"
		if fnID, ok := locFn[s.leafLoc]; ok {
			if idx, ok := fnName[fnID]; ok && idx < uint64(len(strTab)) {
				name = strTab[idx]
			}
		}
		ns := s.cpuNs
		if ns == 0 && period > 0 {
			ns = s.count * int64(period)
		}
		self[pkgOf(name)] += ns
	}
	if len(self) == 0 {
		return nil, fmt.Errorf("%w: no samples", errPprof)
	}
	return self, nil
}

// pkgOf truncates a fully qualified function name to its package path:
// "slim/internal/server.(*Server).Handle" → "slim/internal/server",
// "runtime.mallocgc" → "runtime". Names without a recognizable package
// are returned whole.
func pkgOf(name string) string {
	slash := strings.LastIndexByte(name, '/')
	rest := name[slash+1:]
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return name
	}
	return name[:slash+1+dot]
}
