package hostmon

import (
	"testing"
	"time"

	"slim/internal/obs"
)

// BenchmarkSampleNow is the steady-state sample path: one runtime/metrics
// read, series publication, ring append, stall detection. Alloc-guard
// pins it at 0 allocs/op.
func BenchmarkSampleNow(b *testing.B) {
	clk := &testClock{}
	m := New(Config{Interval: 100 * time.Millisecond, Clock: clk.now}).
		Instrument(obs.NewRegistry(obs.DomainWall))
	var now time.Duration
	for i := 0; i < 3; i++ { // size the metrics buffers
		now += 100 * time.Millisecond
		clk.set(now)
		m.SampleNow()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 100 * time.Millisecond
		clk.set(now)
		m.SampleNow()
	}
}

// BenchmarkWindows is the flight recorder's host-evidence fetch — the
// per-breach cost of HOST attribution.
func BenchmarkWindows(b *testing.B) {
	clk := &testClock{}
	m := New(Config{Interval: 100 * time.Millisecond, Clock: clk.now})
	m.SampleNow()
	var now time.Duration
	for i := 0; i < 40; i++ { // populate some stall windows
		now += 300 * time.Millisecond
		clk.set(now)
		m.SampleNow()
		now += 100 * time.Millisecond
		clk.set(now)
		m.SampleNow()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Windows(now)
	}
}

// BenchmarkSelfTimeByPkg is the per-profile-window parse cost.
func BenchmarkSelfTimeByPkg(b *testing.B) {
	data := buildProfile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelfTimeByPkg(data); err != nil {
			b.Fatal(err)
		}
	}
}
