// Package hostmon is the host-runtime half of the observability stack:
// everything that can stall the pixel pipeline but never shows up in a
// wire trace. A Monitor samples runtime/metrics on a fixed interval —
// GC pause and scheduler-latency histograms, heap and goroutine counts,
// CGo and CPU time — publishing slim_runtime_* series into the existing
// registry and keeping a bounded in-memory ring of recent samples for
// incident bundles. The sample path is zero-alloc in steady state: the
// runtime/metrics buffers, histogram-delta scratch, and ring slots are
// all preallocated at Start.
//
// The monitor also turns its raw deltas into *stall windows*: intervals
// during which the host was provably not running user code — a GC pause
// above threshold ("gc") or evidence of CPU starvation ("cpu": the
// sampler's own tick fired late, or the scheduler-latency histogram grew
// a tail). Windows are handed to the flight recorder as
// flight.HostWindow evidence (Recorder.SetHostEvidence), which is how a
// breach whose critical chain overlaps a stall earns a HOST verdict
// instead of being misblamed on an innocent pipeline stage.
//
// A companion Profiler (profiler.go) keeps a rotating ring of short pprof
// CPU-profile windows and exposes top-N self-time by package as gauges,
// so an incident bundle always contains the profile covering the moment
// things went wrong.
package hostmon

import (
	"math"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"slim/internal/obs"
	"slim/internal/obs/flight"
)

// Runtime metric names the sampler reads, fixed at build time so the
// sample buffer never changes shape.
const (
	mGCPauses   = "/gc/pauses:seconds"
	mSchedLat   = "/sched/latencies:seconds"
	mHeapBytes  = "/memory/classes/heap/objects:bytes"
	mTotalBytes = "/memory/classes/total:bytes"
	mGoroutines = "/sched/goroutines:goroutines"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mCgoCalls   = "/cgo/go-to-c-calls:calls"
	mCPUGC      = "/cpu/classes/gc/total:cpu-seconds"
	mCPUTotal   = "/cpu/classes/total:cpu-seconds"
)

var metricNames = [...]string{
	mGCPauses, mSchedLat, mHeapBytes, mTotalBytes, mGoroutines,
	mGCCycles, mCgoCalls, mCPUGC, mCPUTotal,
}

// Config parameterizes a Monitor. Zero fields take defaults.
type Config struct {
	// Interval is the sampling period (default 250 ms).
	Interval time.Duration
	// RingSize bounds the in-memory sample ring (default 240 — one
	// minute of history at the default interval).
	RingSize int
	// GCPauseThreshold: a tick whose GC-pause delta contains a pause at
	// or above this records a "gc" stall window (default 10 ms).
	GCPauseThreshold time.Duration
	// CPUStallThreshold: a tick that fires this much late, or whose
	// sched-latency delta grew a tail at or above it, records a "cpu"
	// stall window (default 10 ms). The tick-lag signal is deliberate:
	// a starved sampler IS CPU-starvation evidence.
	CPUStallThreshold time.Duration
	// WindowRetention is how long stall windows remain reportable
	// (default 2 m); MaxWindows bounds how many are kept (default 256).
	WindowRetention time.Duration
	MaxWindows      int
	// Clock stamps samples and stall windows. Wire it to the flight
	// recorder's ring clock (flight.Recorder.Clock) so windows and
	// breach chains share a time base. Default: monotonic time since
	// the monitor was created.
	Clock func() time.Duration
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.RingSize <= 0 {
		c.RingSize = 240
	}
	if c.GCPauseThreshold <= 0 {
		c.GCPauseThreshold = 10 * time.Millisecond
	}
	if c.CPUStallThreshold <= 0 {
		c.CPUStallThreshold = 10 * time.Millisecond
	}
	if c.WindowRetention <= 0 {
		c.WindowRetention = 2 * time.Minute
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 256
	}
	return c
}

// Sample is one tick's host snapshot, as stored in the ring and
// serialized into incident bundles.
type Sample struct {
	// T is the sample timestamp on the monitor's clock.
	T time.Duration `json:"t_ns"`
	// HeapBytes / TotalBytes are live-object and total-reserved memory.
	HeapBytes  uint64 `json:"heap_bytes"`
	TotalBytes uint64 `json:"total_bytes"`
	// Goroutines is the live goroutine count.
	Goroutines int64 `json:"goroutines"`
	// GCCycles is the cumulative completed-GC-cycle count.
	GCCycles uint64 `json:"gc_cycles"`
	// CgoCalls is the cumulative Go-to-C call count.
	CgoCalls uint64 `json:"cgo_calls"`
	// WorstGCPause / WorstSchedLat are the worst GC pause and scheduler
	// latency first observed in this tick's histogram delta (0 if none).
	WorstGCPause  time.Duration `json:"worst_gc_pause_ns"`
	WorstSchedLat time.Duration `json:"worst_sched_lat_ns"`
	// GCCPUMilli is GC CPU time as a permille of total CPU time.
	GCCPUMilli int64 `json:"gc_cpu_milli"`
	// TickLag is how late this tick fired relative to its schedule — a
	// direct measurement of the sampler goroutine's own starvation.
	TickLag time.Duration `json:"tick_lag_ns"`
}

// Monitor is the runtime/metrics sampler. Create with New, wire with
// Instrument, then Start; Close stops the loop and waits for it.
type Monitor struct {
	cfg     Config
	start   time.Time
	enabled atomic.Bool

	// Sampler state (loop goroutine only; guarded by smu for SampleNow).
	smu        sync.Mutex
	samples    []metrics.Sample
	prevPause  []uint64 // previous cumulative GC-pause bucket counts
	prevSched  []uint64 // previous cumulative sched-latency bucket counts
	prevGC     uint64
	prevCgo    uint64
	prevTick   time.Duration
	haveHists  bool
	lastSample Sample

	// Ring of recent samples (guarded by rmu; fixed backing array).
	rmu   sync.Mutex
	ring  []Sample
	rHead int // next write index
	rLen  int

	// Stall windows (guarded by wmu; bounded slice).
	wmu  sync.Mutex
	wins []flight.HostWindow

	// Lifecycle.
	stop chan struct{}
	done chan struct{}

	// Instruments (nil until Instrument).
	heapG, totalG, goroutinesG *obs.Gauge
	gcPauseG, schedLatG        *obs.Gauge
	gcCPUG, tickLagG           *obs.Gauge
	gcCyclesC, cgoC            *obs.Counter
	winGCC, winCPUC            *obs.Counter
	samplesC                   *obs.Counter
	pauseHist                  *obs.Histogram
}

// New returns a stopped, enabled monitor. Zero config fields take
// defaults.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:   cfg,
		start: time.Now(),
		ring:  make([]Sample, cfg.RingSize),
		wins:  make([]flight.HostWindow, 0, cfg.MaxWindows),
	}
	if m.cfg.Clock == nil {
		start := m.start
		m.cfg.Clock = func() time.Duration { return time.Since(start) }
	}
	m.samples = make([]metrics.Sample, len(metricNames))
	for i, n := range metricNames {
		m.samples[i].Name = n
	}
	m.enabled.Store(true)
	return m
}

// Instrument resolves the monitor's series in reg: slim_runtime_* gauges
// and counters plus the slim_runtime_gc_pause histogram (worst pause per
// tick).
func (m *Monitor) Instrument(reg *obs.Registry) *Monitor {
	m.heapG = reg.Gauge("slim_runtime_heap_bytes")
	m.totalG = reg.Gauge("slim_runtime_total_bytes")
	m.goroutinesG = reg.Gauge("slim_runtime_goroutines")
	m.gcPauseG = reg.Gauge("slim_runtime_gc_pause_worst_ns")
	m.schedLatG = reg.Gauge("slim_runtime_sched_latency_worst_ns")
	m.gcCPUG = reg.Gauge("slim_runtime_gc_cpu_milli")
	m.tickLagG = reg.Gauge("slim_runtime_tick_lag_ns")
	m.gcCyclesC = reg.Counter("slim_runtime_gc_cycles_total")
	m.cgoC = reg.Counter("slim_runtime_cgo_calls_total")
	m.winGCC = reg.Counter(`slim_runtime_host_windows_total{kind="gc"}`)
	m.winCPUC = reg.Counter(`slim_runtime_host_windows_total{kind="cpu"}`)
	m.samplesC = reg.Counter("slim_runtime_samples_total")
	m.pauseHist = reg.Histogram("slim_runtime_gc_pause")
	return m
}

// SetEnabled switches sampling on or off without stopping the loop.
// Disabled ticks cost one atomic load and touch nothing.
func (m *Monitor) SetEnabled(on bool) { m.enabled.Store(on) }

// Enabled reports whether sampling is live.
func (m *Monitor) Enabled() bool { return m.enabled.Load() }

// Interval reports the sampling period.
func (m *Monitor) Interval() time.Duration { return m.cfg.Interval }

// SetInterval changes the sampling period. Call it before Start; a
// running loop keeps ticking at the period it started with. Non-positive
// values are ignored.
func (m *Monitor) SetInterval(d time.Duration) {
	if d > 0 && m.stop == nil {
		m.cfg.Interval = d
	}
}

// Start launches the sampling loop. Starting a started monitor panics;
// Close it first.
func (m *Monitor) Start() {
	if m.stop != nil {
		panic("hostmon: Start on a running monitor")
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	m.prevTick = m.cfg.Clock()
	go m.loop(m.stop, m.done)
}

// Close stops the sampling loop and waits for it to exit. Closing a
// stopped monitor is a no-op.
func (m *Monitor) Close() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop, m.done = nil, nil
}

func (m *Monitor) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if !m.enabled.Load() {
				m.smu.Lock()
				m.prevTick = m.cfg.Clock() // don't count disabled time as lag
				m.smu.Unlock()
				continue
			}
			m.SampleNow()
		}
	}
}

// SampleNow takes one synchronous sample: reads runtime/metrics, updates
// the published series, appends to the ring, and records any stall
// windows detected in this tick's delta. The loop calls it every
// interval; tests and incident triggers call it directly for a fresh
// snapshot.
func (m *Monitor) SampleNow() Sample {
	m.smu.Lock()
	defer m.smu.Unlock()

	now := m.cfg.Clock()
	lag := now - m.prevTick - m.cfg.Interval
	if m.prevTick == 0 || lag < 0 {
		lag = 0
	}
	prevTick := m.prevTick
	m.prevTick = now

	metrics.Read(m.samples)

	var s Sample
	s.T = now
	s.TickLag = lag
	for i := range m.samples {
		v := &m.samples[i].Value
		switch m.samples[i].Name {
		case mHeapBytes:
			if v.Kind() == metrics.KindUint64 {
				s.HeapBytes = v.Uint64()
			}
		case mTotalBytes:
			if v.Kind() == metrics.KindUint64 {
				s.TotalBytes = v.Uint64()
			}
		case mGoroutines:
			if v.Kind() == metrics.KindUint64 {
				s.Goroutines = int64(v.Uint64())
			}
		case mGCCycles:
			if v.Kind() == metrics.KindUint64 {
				s.GCCycles = v.Uint64()
			}
		case mCgoCalls:
			if v.Kind() == metrics.KindUint64 {
				s.CgoCalls = v.Uint64()
			}
		}
	}
	// CPU fractions: GC CPU as a permille of total CPU.
	var cpuGC, cpuTotal float64
	for i := range m.samples {
		if m.samples[i].Value.Kind() != metrics.KindFloat64 {
			continue
		}
		switch m.samples[i].Name {
		case mCPUGC:
			cpuGC = m.samples[i].Value.Float64()
		case mCPUTotal:
			cpuTotal = m.samples[i].Value.Float64()
		}
	}
	if cpuTotal > 0 {
		s.GCCPUMilli = int64(1000 * cpuGC / cpuTotal)
	}
	// Histogram deltas: worst new GC pause and sched latency this tick.
	for i := range m.samples {
		if m.samples[i].Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := m.samples[i].Value.Float64Histogram()
		switch m.samples[i].Name {
		case mGCPauses:
			s.WorstGCPause = histDelta(h, &m.prevPause, m.haveHists)
		case mSchedLat:
			s.WorstSchedLat = histDelta(h, &m.prevSched, m.haveHists)
		}
	}
	first := !m.haveHists
	m.haveHists = true
	m.lastSample = s

	// Publish.
	if m.heapG != nil {
		m.heapG.Set(int64(s.HeapBytes))
		m.totalG.Set(int64(s.TotalBytes))
		m.goroutinesG.Set(s.Goroutines)
		m.gcPauseG.Set(int64(s.WorstGCPause))
		m.schedLatG.Set(int64(s.WorstSchedLat))
		m.gcCPUG.Set(s.GCCPUMilli)
		m.tickLagG.Set(int64(s.TickLag))
		if d := s.GCCycles - m.prevGC; d > 0 && m.prevGC > 0 {
			m.gcCyclesC.Add(int64(d))
		}
		if d := s.CgoCalls - m.prevCgo; d > 0 && m.prevCgo > 0 {
			m.cgoC.Add(int64(d))
		}
		m.samplesC.Inc()
		if s.WorstGCPause > 0 {
			m.pauseHist.Observe(s.WorstGCPause)
		}
	}
	m.prevGC = s.GCCycles
	m.prevCgo = s.CgoCalls

	// Ring append (fixed backing array; no allocation).
	m.rmu.Lock()
	m.ring[m.rHead] = s
	m.rHead = (m.rHead + 1) % len(m.ring)
	if m.rLen < len(m.ring) {
		m.rLen++
	}
	m.rmu.Unlock()

	// Stall windows. The first tick's histogram "delta" is the whole
	// process history — skip it.
	if !first {
		winStart := prevTick
		if winStart > now {
			winStart = now
		}
		if s.WorstGCPause >= m.cfg.GCPauseThreshold {
			m.addWindow(flight.HostWindow{
				Start: winStart, End: now, Kind: "gc",
				WorstNs: int64(s.WorstGCPause),
			})
		}
		cpuWorst := s.TickLag
		if s.WorstSchedLat > cpuWorst {
			cpuWorst = s.WorstSchedLat
		}
		if cpuWorst >= m.cfg.CPUStallThreshold {
			m.addWindow(flight.HostWindow{
				Start: winStart, End: now, Kind: "cpu",
				WorstNs: int64(cpuWorst),
			})
		}
	}
	return s
}

// histDelta compares a cumulative Float64Histogram against the previous
// tick's counts (stored in *prev, which it updates) and returns the worst
// bucket that gained a count — the upper edge, or the lower edge for the
// +Inf bucket. Returns 0 when nothing new landed or on the warm-up tick.
func histDelta(h *metrics.Float64Histogram, prev *[]uint64, warm bool) time.Duration {
	var worst float64
	if warm && len(*prev) == len(h.Counts) {
		for i := len(h.Counts) - 1; i >= 0; i-- {
			if h.Counts[i] > (*prev)[i] {
				// Buckets[i] and Buckets[i+1] bound bucket i.
				hi := h.Buckets[i+1]
				if math.IsInf(hi, +1) {
					hi = h.Buckets[i]
				}
				worst = hi
				break
			}
		}
	}
	// Save current counts, growing the scratch only when the runtime
	// changes the bucket layout (effectively never after warm-up).
	if cap(*prev) < len(h.Counts) {
		*prev = make([]uint64, len(h.Counts))
	}
	*prev = (*prev)[:len(h.Counts)]
	copy(*prev, h.Counts)
	if worst <= 0 || math.IsNaN(worst) || math.IsInf(worst, 0) {
		return 0
	}
	return time.Duration(worst * float64(time.Second))
}

// addWindow appends a stall window, merging with the newest window when
// they touch and share a kind, bumping the kind counter, and evicting
// the oldest entry past MaxWindows.
func (m *Monitor) addWindow(w flight.HostWindow) {
	m.wmu.Lock()
	if n := len(m.wins); n > 0 {
		last := &m.wins[n-1]
		if last.Kind == w.Kind && w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			if w.WorstNs > last.WorstNs {
				last.WorstNs = w.WorstNs
			}
			m.wmu.Unlock()
			return
		}
	}
	if len(m.wins) >= m.cfg.MaxWindows {
		copy(m.wins, m.wins[1:])
		m.wins = m.wins[:len(m.wins)-1]
	}
	m.wins = append(m.wins, w)
	m.wmu.Unlock()
	switch w.Kind {
	case "gc":
		if m.winGCC != nil {
			m.winGCC.Inc()
		}
	default:
		if m.winCPUC != nil {
			m.winCPUC.Inc()
		}
	}
}

// Windows reports the stall windows still inside the retention horizon
// as of asOf, oldest first — the flight recorder's host-evidence feed:
//
//	rec.SetHostEvidence(mon.Windows)
func (m *Monitor) Windows(asOf time.Duration) []flight.HostWindow {
	horizon := asOf - m.cfg.WindowRetention
	m.wmu.Lock()
	defer m.wmu.Unlock()
	out := make([]flight.HostWindow, 0, len(m.wins))
	for _, w := range m.wins {
		if w.End >= horizon {
			out = append(out, w)
		}
	}
	return out
}

// Ring returns a copy of the sample ring, oldest first.
func (m *Monitor) Ring() []Sample {
	m.rmu.Lock()
	defer m.rmu.Unlock()
	out := make([]Sample, m.rLen)
	start := (m.rHead - m.rLen + len(m.ring)) % len(m.ring)
	for i := 0; i < m.rLen; i++ {
		out[i] = m.ring[(start+i)%len(m.ring)]
	}
	return out
}

// Last returns the most recent sample (zero before the first tick).
func (m *Monitor) Last() Sample {
	m.smu.Lock()
	defer m.smu.Unlock()
	return m.lastSample
}
