package capture

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"slim/internal/obs"
	"slim/internal/protocol"
)

// wireFor encodes one message as a single-command datagram.
func wireFor(t *testing.T, seq uint32, msg protocol.Message) []byte {
	t.Helper()
	return protocol.Encode(nil, seq, msg)
}

func sampleSet(w, h int) *protocol.Set {
	px := make([]protocol.Pixel, w*h)
	return &protocol.Set{Rect: protocol.Rect{W: w, H: h}, Pixels: px}
}

func TestRingDisabledRecordsNothing(t *testing.T) {
	r := NewRing(4)
	r.Tap(DirDown, "c1", -1, []byte{1, 2, 3}, time.Millisecond)
	r.TapSize(DirDown, 1, 99, time.Millisecond)
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("disabled ring recorded %d records", len(got))
	}
	var nilRing *Ring
	if nilRing.Enabled() {
		t.Fatal("nil ring reports enabled")
	}
	nilRing.Tap(DirDown, "", -1, nil, 0) // must not panic
	nilRing.SetEnabled(true)
	if nilRing.Drain() != nil || nilRing.Drops() != 0 {
		t.Fatal("nil ring not inert")
	}
}

func TestRingTapDrainRoundTrip(t *testing.T) {
	r := NewRing(8)
	r.SetEnabled(true)
	w1 := []byte{1, 2, 3, 4}
	r.Tap(DirDown, "console-a", 7, w1, 5*time.Millisecond)
	w1[0] = 0xff // caller reuse must not corrupt the ring's copy
	r.TapSize(DirUp, 3, 1200, 6*time.Millisecond)
	recs := r.Drain()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Dir != DirDown || recs[0].Console != "console-a" || recs[0].Flow != 7 ||
		recs[0].Size != 4 || recs[0].T != 5*time.Millisecond {
		t.Fatalf("bad record 0: %+v", recs[0])
	}
	if !bytes.Equal(recs[0].Wire, []byte{1, 2, 3, 4}) {
		t.Fatalf("ring copy corrupted by caller reuse: %v", recs[0].Wire)
	}
	if recs[1].Wire != nil || recs[1].Size != 1200 || recs[1].Dir != DirUp {
		t.Fatalf("bad size-only record: %+v", recs[1])
	}
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("drain not empty after drain: %d", len(got))
	}
}

func TestRingFullDropsNewestAndCounts(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	r := NewRing(2).Instrument(reg)
	r.SetEnabled(true)
	for i := 0; i < 5; i++ {
		r.Tap(DirDown, "", -1, []byte{byte(i)}, time.Duration(i))
	}
	if got := r.Drops(); got != 3 {
		t.Fatalf("drops = %d, want 3", got)
	}
	recs := r.Drain()
	if len(recs) != 2 || recs[0].Wire[0] != 0 || recs[1].Wire[0] != 1 {
		t.Fatalf("ring should keep the oldest records: %+v", recs)
	}
	snap := reg.Snapshot()
	if snap.Counters["slim_capture_ring_drops_total"] != 3 {
		t.Fatalf("drop counter = %d, want 3", snap.Counters["slim_capture_ring_drops_total"])
	}
	if snap.Counters["slim_capture_records_total"] != 2 {
		t.Fatalf("records counter = %d, want 2", snap.Counters["slim_capture_records_total"])
	}
}

func TestSlimcapRoundTrip(t *testing.T) {
	r := NewRing(16)
	r.SetEnabled(true)
	epoch := time.Unix(942364800, 0) // fixed instant, keeps the test deterministic
	set := sampleSet(8, 4)
	r.Tap(DirDown, "c1", -1, wireFor(t, 1, set), 10*time.Millisecond)
	r.Tap(DirUp, "c1", -1, wireFor(t, 0, &protocol.Status{LastSeq: 1}), 11*time.Millisecond)
	r.TapSize(DirDown, 2, 333, 12*time.Millisecond)

	var buf bytes.Buffer
	if err := WriteHeader(&buf, obs.DomainWall, epoch); err != nil {
		t.Fatal(err)
	}
	n, err := r.SpoolTo(&buf)
	if err != nil || n != 3 {
		t.Fatalf("SpoolTo = %d, %v; want 3, nil", n, err)
	}
	// Second spool on an empty ring writes nothing.
	if n, err := r.SpoolTo(&buf); err != nil || n != 0 {
		t.Fatalf("empty SpoolTo = %d, %v", n, err)
	}

	h, recs, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != SlimcapVersion || h.Domain != obs.DomainWall || !h.Epoch.Equal(epoch) {
		t.Fatalf("bad header: %+v", h)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].T != 10*time.Millisecond || recs[0].Dir != DirDown || recs[0].Console != "c1" {
		t.Fatalf("bad record 0: %+v", recs[0])
	}
	if recs[0].Flow != -1 {
		t.Fatalf("flow -1 did not survive the round trip: %d", recs[0].Flow)
	}
	if !bytes.Equal(recs[0].Wire, wireFor(t, 1, set)) {
		t.Fatal("wire bytes did not survive the round trip")
	}
	if recs[2].Wire != nil || recs[2].Size != 333 || recs[2].Flow != 2 {
		t.Fatalf("bad size-only record: %+v", recs[2])
	}
}

func TestReadCaptureRejectsGarbage(t *testing.T) {
	if _, err := ReadHeader(strings.NewReader("NOPE")); err == nil {
		t.Fatal("short/bad magic accepted")
	}
	var buf bytes.Buffer
	WriteHeader(&buf, obs.DomainSim, time.Time{})
	full := AppendRecord(nil, Record{T: time.Second, Dir: DirDown, Size: 3, Wire: []byte{1, 2, 3}})
	buf.Write(full[:len(full)-1]) // truncate mid-record
	if _, _, err := ReadCapture(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestBuildReportShape(t *testing.T) {
	var recs []Record
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	add := func(dir Direction, tms int, msg protocol.Message) {
		w := protocol.Encode(nil, 1, msg)
		recs = append(recs, Record{T: at(tms), Dir: dir, Size: len(w), Wire: w})
	}
	add(DirDown, 0, sampleSet(16, 1))     // 16 px
	add(DirDown, 100, sampleSet(16, 1))   // 16 px
	add(DirDown, 200, &protocol.Fill{Rect: protocol.Rect{W: 100, H: 100}, Color: 1})
	add(DirUp, 500, &protocol.Status{LastSeq: 2})
	// One batch of two commands.
	bw, err := protocol.EncodeBatch(nil, []uint32{3, 4}, []protocol.Message{
		&protocol.Copy{Rect: protocol.Rect{W: 10, H: 10}, DstX: 1, DstY: 1},
		&protocol.Fill{Rect: protocol.Rect{W: 2, H: 2}, Color: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs = append(recs, Record{T: at(1000), Dir: DirDown, Size: len(bw), Wire: bw})
	// One size-only record.
	recs = append(recs, Record{T: at(1000), Dir: DirDown, Size: 999})

	rep := BuildReport(Header{Version: 1, Domain: obs.DomainSim}, recs)
	if rep.Duration != time.Second {
		t.Fatalf("duration = %v, want 1s", rep.Duration)
	}
	rows := map[string]Row{}
	for _, r := range rep.Down {
		rows[r.Label] = r
	}
	set := rows["SET"]
	if set.Count != 2 || set.Pixels != 32 {
		t.Fatalf("SET row = %+v", set)
	}
	if fill := rows["FILL"]; fill.Count != 2 || fill.Pixels != 100*100+4 {
		t.Fatalf("FILL row = %+v", fill)
	}
	if copyRow := rows["COPY"]; copyRow.Count != 1 || copyRow.Pixels != 100 {
		t.Fatalf("COPY row = %+v", copyRow)
	}
	if _, ok := rows["RAW"]; !ok || rep.SizeOnly != 1 {
		t.Fatalf("size-only record not reported: %+v", rep)
	}
	if len(rep.Up) != 1 || rep.Up[0].Label != "STATUS" {
		t.Fatalf("up rows = %+v", rep.Up)
	}
	if rep.Undecoded != 0 {
		t.Fatalf("undecoded = %d", rep.Undecoded)
	}
	// Rates derive from the observed span.
	if got := rep.Rate(set); got != 2 {
		t.Fatalf("SET rate = %v cmd/s, want 2", got)
	}
	if got := rep.Bps(set); got != float64(set.Bytes)*8 {
		t.Fatalf("SET bps = %v", got)
	}

	var out strings.Builder
	if err := rep.WriteTable(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"server → console", "console → server", "SET", "FILL", "STATUS", "%bytes", "B/px"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table output missing %q:\n%s", want, text)
		}
	}
}

func TestBuildReportCountsUndecodable(t *testing.T) {
	rep := BuildReport(Header{}, []Record{
		{T: 0, Dir: DirDown, Size: 5, Wire: []byte{9, 9, 9, 9, 9}},
	})
	if rep.Undecoded != 1 {
		t.Fatalf("undecoded = %d, want 1", rep.Undecoded)
	}
}

func TestWritePerfetto(t *testing.T) {
	set := sampleSet(4, 4)
	recs := []Record{
		{T: 2 * time.Millisecond, Dir: DirDown, Size: 10, Wire: protocol.Encode(nil, 1, set)},
		{T: 3 * time.Millisecond, Dir: DirUp, Size: 22, Wire: protocol.Encode(nil, 0, &protocol.Nack{From: 1, To: 2})},
		{T: 4 * time.Millisecond, Dir: DirDown, Flow: 3, Size: 555},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, Header{Domain: obs.DomainWall}, recs); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ev := range f.TraceEvents {
		names = append(names, ev.Name)
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"SET", "NACK", "RAW 555B", "thread_name"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("perfetto export missing %q in %q", want, joined)
		}
	}
	// Instants must land on the direction tracks at microsecond timestamps.
	last := f.TraceEvents[len(f.TraceEvents)-1]
	if last.TS != 4000 || last.TID != int(DirDown) {
		t.Fatalf("bad instant placement: %+v", last)
	}
}

// TestDisabledTapAllocatesNothing is the capture half of the overhead
// contract shared with the flight recorder: a disabled tap must not
// allocate, so the hooks can live on every transport send path.
func TestDisabledTapAllocatesNothing(t *testing.T) {
	r := NewRing(4)
	wire := []byte{1, 2, 3, 4}
	if allocs := testing.AllocsPerRun(100, func() {
		if r.Enabled() {
			r.Tap(DirDown, "c", -1, wire, 0)
		}
	}); allocs != 0 {
		t.Fatalf("disabled tap allocates %v times per run", allocs)
	}
	var nilRing *Ring
	if allocs := testing.AllocsPerRun(100, func() {
		if nilRing.Enabled() {
			nilRing.Tap(DirDown, "c", -1, wire, 0)
		}
	}); allocs != 0 {
		t.Fatalf("nil-ring tap allocates %v times per run", allocs)
	}
}

// TestEnabledSteadyStateDoesNotAllocate: once every slot's wire buffer has
// grown to the datagram size, tap+spool cycles reuse slot storage.
func TestEnabledTapReusesSlotStorage(t *testing.T) {
	r := NewRing(4)
	r.SetEnabled(true)
	wire := make([]byte, 512)
	// Warm every slot.
	for i := 0; i < 4; i++ {
		r.Tap(DirDown, "c", -1, wire, 0)
	}
	r.mu.Lock()
	r.head, r.n = 0, 0
	r.mu.Unlock()
	if allocs := testing.AllocsPerRun(50, func() {
		r.Tap(DirDown, "c", -1, wire, 0)
		r.mu.Lock()
		r.head, r.n = 0, 0
		r.mu.Unlock()
	}); allocs != 0 {
		t.Fatalf("warmed enabled tap allocates %v times per run", allocs)
	}
}

// Benchmarks: the bench-guard asserts the disabled path stays identical to
// the no-capture baseline (and 0 allocs/op); see Makefile bench-guard.

var benchWire = make([]byte, 1400)

// BenchmarkTapBaseline is the reference: the send path with no ring at all.
func BenchmarkTapBaseline(b *testing.B) {
	var r *Ring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Enabled() {
			r.Tap(DirDown, "c", -1, benchWire, 0)
		}
	}
}

// BenchmarkTapDisabled is the shipped configuration: ring present, gate off.
func BenchmarkTapDisabled(b *testing.B) {
	r := NewRing(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Enabled() {
			r.Tap(DirDown, "c", -1, benchWire, 0)
		}
	}
}

func BenchmarkTapEnabled(b *testing.B) {
	r := NewRing(64)
	r.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Enabled() {
			r.Tap(DirDown, "c", -1, benchWire, time.Duration(i))
		}
		if i%64 == 63 {
			r.mu.Lock()
			r.head, r.n = 0, 0
			r.mu.Unlock()
		}
	}
}

func BenchmarkSpool(b *testing.B) {
	r := NewRing(256)
	r.SetEnabled(true)
	var sink bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%256 == 0 {
			for j := 0; j < 256; j++ {
				r.Tap(DirDown, "c", -1, benchWire, time.Duration(j))
			}
			sink.Reset()
		}
		r.SpoolTo(&sink)
	}
}
