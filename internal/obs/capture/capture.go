// Package capture is a wire-level packet capture for SLIM transports.
//
// A Ring is a fixed-size buffer of timestamped datagram records that every
// transport (udp, fabric, netsim) taps on its send and receive paths. The
// paper's Tables 2-4 were produced from exactly this kind of on-the-wire
// trace: per-command counts, byte volumes, and bandwidths measured at the
// interconnect, not inside the server. Captures spool to a versioned
// .slimcap file (see PROTOCOL.md, "Wire captures") that `slimtrace capture`
// decodes back into those tables.
//
// The ring follows the flight-recorder overhead contract: when disabled
// (the default) a tap is a single atomic load and performs no allocation,
// so the capture hooks can stay compiled into every transport's hot path.
// Enabling the ring turns taps into a short critical section that copies
// the datagram into a reused slot buffer. When the ring fills before a
// spool drains it, the newest record is dropped and counted — capture
// never applies backpressure to the transport.
package capture

import (
	"sync"
	"sync/atomic"
	"time"

	"slim/internal/obs"
)

// Direction labels which way a datagram was travelling when it was tapped.
type Direction uint8

const (
	// DirDown is server-to-console traffic: display commands, grants' replies.
	DirDown Direction = 1
	// DirUp is console-to-server traffic: input, status, NACKs.
	DirUp Direction = 2
)

func (d Direction) String() string {
	switch d {
	case DirDown:
		return "down"
	case DirUp:
		return "up"
	}
	return "?"
}

// Record is one captured datagram. T is transport time (wall time since the
// transport started, or virtual time for simulated links). Wire is the raw
// datagram payload; it is nil for size-only taps (netsim links carry sizes,
// not bytes). Size is the on-the-wire length even when Wire is elided.
type Record struct {
	T       time.Duration
	Dir     Direction
	Flow    int32 // netsim flow id, -1 when unknown
	Size    int
	Console string // remote console address, "" when unknown
	Wire    []byte
}

// Ring buffers captured records until they are spooled or drained.
// The zero Ring and the nil Ring are valid, permanently-disabled rings.
type Ring struct {
	enabled atomic.Bool

	mu    sync.Mutex
	slots []slot
	head  int // next slot to read
	n     int // buffered records

	records atomic.Uint64
	bytes   atomic.Uint64
	drops   atomic.Uint64

	// Optional obs instruments, resolved once by Instrument.
	mRecords *obs.Counter
	mBytes   *obs.Counter
	mDrops   *obs.Counter
	mEnabled *obs.Gauge
}

// slot is reused storage for one record; wire keeps its capacity across
// generations so a steady-state enabled ring stops allocating.
type slot struct {
	rec  Record
	wire []byte
}

// DefaultSlots is the ring size used by NewRing(0) and the process-wide
// Default ring: at a datagram per slot it holds several seconds of typical
// interactive traffic between spools.
const DefaultSlots = 8192

// NewRing returns a disabled ring with the given slot count (0 means
// DefaultSlots).
func NewRing(slots int) *Ring {
	if slots <= 0 {
		slots = DefaultSlots
	}
	return &Ring{slots: make([]slot, slots)}
}

// Default is the process-wide wall-clock capture ring. The udp transport
// taps it; it is instrumented in obs.Default so /metrics shows capture
// volume and ring drops.
var Default = NewRing(0).Instrument(obs.Default)

// Instrument resolves the ring's counters and gauges in reg and returns the
// ring. slim_capture_enabled reports the gate so dashboards can tell "no
// traffic" from "not capturing".
func (r *Ring) Instrument(reg *obs.Registry) *Ring {
	if r == nil || reg == nil {
		return r
	}
	r.mRecords = reg.Counter("slim_capture_records_total")
	r.mBytes = reg.Counter("slim_capture_bytes_total")
	r.mDrops = reg.Counter("slim_capture_ring_drops_total")
	r.mEnabled = reg.Gauge("slim_capture_enabled")
	return r
}

// SetEnabled opens or closes the capture gate. Disabling does not discard
// buffered records; they remain spoolable.
func (r *Ring) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
	if r.mEnabled != nil {
		if on {
			r.mEnabled.Set(1)
		} else {
			r.mEnabled.Set(0)
		}
	}
}

// Enabled reports whether taps are being recorded. It is the cheap guard
// call sites use so a disabled tap costs one atomic load and never
// evaluates its arguments (in particular, never reads a clock).
func (r *Ring) Enabled() bool { return r != nil && r.enabled.Load() }

// Drops returns the number of records lost to a full ring.
func (r *Ring) Drops() uint64 {
	if r == nil {
		return 0
	}
	return r.drops.Load()
}

// Records returns the total number of records accepted since creation.
func (r *Ring) Records() uint64 {
	if r == nil {
		return 0
	}
	return r.records.Load()
}

// Tap records one datagram with its payload. The payload is copied, so the
// caller may reuse wire immediately. No-op when the ring is disabled.
func (r *Ring) Tap(dir Direction, console string, flow int32, wire []byte, at time.Duration) {
	if !r.Enabled() {
		return
	}
	r.tap(Record{T: at, Dir: dir, Flow: flow, Size: len(wire), Console: console}, wire)
}

// TapSize records a payload-less datagram (size-only transports such as
// netsim links). No-op when the ring is disabled.
func (r *Ring) TapSize(dir Direction, flow int32, size int, at time.Duration) {
	if !r.Enabled() {
		return
	}
	r.tap(Record{T: at, Dir: dir, Flow: flow, Size: size}, nil)
}

func (r *Ring) tap(rec Record, wire []byte) {
	r.mu.Lock()
	if r.n == len(r.slots) {
		r.mu.Unlock()
		r.drops.Add(1)
		if r.mDrops != nil {
			r.mDrops.Add(1)
		}
		return
	}
	s := &r.slots[(r.head+r.n)%len(r.slots)]
	s.wire = append(s.wire[:0], wire...)
	s.rec = rec
	if wire != nil {
		s.rec.Wire = s.wire
	} else {
		s.rec.Wire = nil
	}
	r.n++
	r.mu.Unlock()
	r.records.Add(1)
	r.bytes.Add(uint64(rec.Size))
	if r.mRecords != nil {
		r.mRecords.Add(1)
		r.mBytes.Add(int64(rec.Size))
	}
}

// Drain removes and returns every buffered record. The returned records own
// their payloads (they are copied out of the ring's reused slots).
func (r *Ring) Drain() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.n)
	for ; r.n > 0; r.n-- {
		s := &r.slots[r.head]
		rec := s.rec
		if s.rec.Wire != nil {
			rec.Wire = append([]byte(nil), s.rec.Wire...)
		}
		out = append(out, rec)
		r.head = (r.head + 1) % len(r.slots)
	}
	r.head = 0
	return out
}

// SpoolTo encodes and removes every buffered record, appending the encoded
// bytes to w (the .slimcap header must already have been written — see
// WriteHeader). Encoding happens under the ring lock; the write itself
// happens after the lock is released so a slow sink never blocks transport
// taps. Returns the number of records spooled.
func (r *Ring) SpoolTo(w interface{ Write([]byte) (int, error) }) (int, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	var scratch []byte
	n := r.n
	for ; r.n > 0; r.n-- {
		scratch = AppendRecord(scratch, r.slots[r.head].rec)
		r.head = (r.head + 1) % len(r.slots)
	}
	r.head = 0
	r.mu.Unlock()
	if len(scratch) == 0 {
		return 0, nil
	}
	_, err := w.Write(scratch)
	return n, err
}
