// The .slimcap wire-capture file format, version 1. The format is specified
// normatively in PROTOCOL.md ("Wire captures: the .slimcap format"); this
// file is the reference implementation. All integers are big-endian, like
// the SLIM wire protocol itself.
//
//	header:  "SLCP" (4) | version u8 | domain u8 | flags u16 | epoch i64
//	record:  t i64 | dir u8 | flow i32 | size u32 | wireLen u32 |
//	         consoleLen u8 | console bytes | wire bytes
//
// t is nanoseconds in the capture's clock domain (wall: since the
// transport started; sim: virtual time). epoch is the wall-clock unix-nano
// instant of t=0, or 0 when the domain has no wall anchor. wireLen may be
// 0 with size > 0: a size-only record from a transport that models
// datagram sizes without carrying bytes (netsim).
package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"slim/internal/obs"
)

// Slimcap format constants.
const (
	slimcapMagic   = "SLCP"
	SlimcapVersion = 1

	headerLen       = 4 + 1 + 1 + 2 + 8
	recordFixedLen  = 8 + 1 + 4 + 4 + 4 + 1
	maxWireLen      = 1 << 20 // sanity bound when reading untrusted files
	domainCodeWall  = 1
	domainCodeSim   = 2
	domainCodeOther = 0
)

// Header describes a .slimcap capture file.
type Header struct {
	Version uint8
	Domain  obs.Domain
	// Epoch is the wall-clock instant of record time zero; the zero Time
	// when the capture's clock has no wall anchor (simulated domains).
	Epoch time.Time
}

func domainCode(d obs.Domain) uint8 {
	switch d {
	case obs.DomainWall:
		return domainCodeWall
	case obs.DomainSim:
		return domainCodeSim
	}
	return domainCodeOther
}

func codeDomain(c uint8) obs.Domain {
	switch c {
	case domainCodeWall:
		return obs.DomainWall
	case domainCodeSim:
		return obs.DomainSim
	}
	return obs.Domain("unknown")
}

// WriteHeader writes the .slimcap file header. Records appended afterwards
// (AppendRecord, Ring.SpoolTo) complete the file; there is no trailer, so a
// capture truncated by a crash is readable up to the last whole record.
func WriteHeader(w io.Writer, domain obs.Domain, epoch time.Time) error {
	var buf [headerLen]byte
	copy(buf[0:4], slimcapMagic)
	buf[4] = SlimcapVersion
	buf[5] = domainCode(domain)
	binary.BigEndian.PutUint16(buf[6:8], 0) // flags, reserved
	var e int64
	if !epoch.IsZero() {
		e = epoch.UnixNano()
	}
	binary.BigEndian.PutUint64(buf[8:16], uint64(e))
	_, err := w.Write(buf[:])
	return err
}

// AppendRecord appends the wire encoding of one record to dst.
func AppendRecord(dst []byte, rec Record) []byte {
	console := rec.Console
	if len(console) > 255 {
		console = console[:255]
	}
	var fixed [recordFixedLen]byte
	binary.BigEndian.PutUint64(fixed[0:8], uint64(rec.T.Nanoseconds()))
	fixed[8] = uint8(rec.Dir)
	binary.BigEndian.PutUint32(fixed[9:13], uint32(rec.Flow))
	binary.BigEndian.PutUint32(fixed[13:17], uint32(rec.Size))
	binary.BigEndian.PutUint32(fixed[17:21], uint32(len(rec.Wire)))
	fixed[21] = uint8(len(console))
	dst = append(dst, fixed[:]...)
	dst = append(dst, console...)
	dst = append(dst, rec.Wire...)
	return dst
}

// ErrBadCapture reports a malformed .slimcap file.
var ErrBadCapture = errors.New("capture: malformed .slimcap file")

// ReadHeader reads and validates a .slimcap header.
func ReadHeader(r io.Reader) (Header, error) {
	var buf [headerLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Header{}, fmt.Errorf("%w: short header: %v", ErrBadCapture, err)
	}
	if string(buf[0:4]) != slimcapMagic {
		return Header{}, fmt.Errorf("%w: bad magic %q", ErrBadCapture, buf[0:4])
	}
	h := Header{Version: buf[4], Domain: codeDomain(buf[5])}
	if h.Version != SlimcapVersion {
		return Header{}, fmt.Errorf("%w: unsupported version %d", ErrBadCapture, h.Version)
	}
	if e := int64(binary.BigEndian.Uint64(buf[8:16])); e != 0 {
		h.Epoch = time.Unix(0, e)
	}
	return h, nil
}

// ReadRecord reads the next record. Returns io.EOF cleanly at end of file;
// a record truncated mid-way returns ErrBadCapture.
func ReadRecord(r io.Reader) (Record, error) {
	var fixed [recordFixedLen]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: truncated record: %v", ErrBadCapture, err)
	}
	rec := Record{
		T:    time.Duration(binary.BigEndian.Uint64(fixed[0:8])),
		Dir:  Direction(fixed[8]),
		Flow: int32(binary.BigEndian.Uint32(fixed[9:13])),
		Size: int(binary.BigEndian.Uint32(fixed[13:17])),
	}
	wireLen := binary.BigEndian.Uint32(fixed[17:21])
	consoleLen := int(fixed[21])
	if wireLen > maxWireLen {
		return Record{}, fmt.Errorf("%w: wire length %d exceeds %d", ErrBadCapture, wireLen, maxWireLen)
	}
	if consoleLen > 0 {
		console := make([]byte, consoleLen)
		if _, err := io.ReadFull(r, console); err != nil {
			return Record{}, fmt.Errorf("%w: truncated console: %v", ErrBadCapture, err)
		}
		rec.Console = string(console)
	}
	if wireLen > 0 {
		rec.Wire = make([]byte, wireLen)
		if _, err := io.ReadFull(r, rec.Wire); err != nil {
			return Record{}, fmt.Errorf("%w: truncated wire bytes: %v", ErrBadCapture, err)
		}
	}
	return rec, nil
}

// ReadCapture reads a whole .slimcap stream: header plus every record.
func ReadCapture(r io.Reader) (Header, []Record, error) {
	h, err := ReadHeader(r)
	if err != nil {
		return Header{}, nil, err
	}
	var recs []Record
	for {
		rec, err := ReadRecord(r)
		if err == io.EOF {
			return h, recs, nil
		}
		if err != nil {
			return h, recs, err
		}
		recs = append(recs, rec)
	}
}
