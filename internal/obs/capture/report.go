// Decoding a capture back into the paper's per-command tables. Tables 2-3
// of the paper break interactive and multimedia traffic down by protocol
// command: how many of each were sent, how many bytes and pixels they
// carried, and the bandwidth they consumed. BuildReport reproduces that
// shape from a .slimcap record stream by re-parsing every captured datagram
// with the real protocol decoder.
package capture

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"slim/internal/core"
	"slim/internal/protocol"
)

// Row aggregates one command type within one direction of a capture.
type Row struct {
	Label  string
	Count  int
	Bytes  int64
	Pixels int64
}

// BytesPerCmd is the mean wire size of this command type.
func (r Row) BytesPerCmd() float64 {
	if r.Count == 0 {
		return 0
	}
	return float64(r.Bytes) / float64(r.Count)
}

// BytesPerPixel is the wire cost per screen pixel carried (Tables 2-3's
// compression column); 0 for commands that carry no pixels.
func (r Row) BytesPerPixel() float64 {
	if r.Pixels == 0 {
		return 0
	}
	return float64(r.Bytes) / float64(r.Pixels)
}

// Report is the decoded, per-command view of a capture.
type Report struct {
	Header   Header
	Duration time.Duration // span from first to last record

	Down []Row // server→console, sorted by bytes descending
	Up   []Row // console→server, sorted by bytes descending

	DownBytes, UpBytes int64
	Records            int
	SizeOnly           int // payload-less records (size-modelled transports)
	Undecoded          int // datagrams the protocol decoder rejected
}

// Bps returns the mean offered bandwidth of rows in bits per second, using
// the report's observed duration; 0 when the capture spans no time.
func (rep *Report) Bps(r Row) float64 {
	if rep.Duration <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / rep.Duration.Seconds()
}

// Rate returns the mean command rate of a row in commands per second.
func (rep *Report) Rate(r Row) float64 {
	if rep.Duration <= 0 {
		return 0
	}
	return float64(r.Count) / rep.Duration.Seconds()
}

// rowKey separates directions so one map pass builds both tables.
type rowKey struct {
	dir   Direction
	label string
}

// BuildReport decodes every record into per-command rows.
func BuildReport(h Header, recs []Record) *Report {
	rep := &Report{Header: h, Records: len(recs)}
	rows := map[rowKey]*Row{}
	add := func(dir Direction, label string, bytes int64, pixels int64) {
		k := rowKey{dir, label}
		r := rows[k]
		if r == nil {
			r = &Row{Label: label}
			rows[k] = r
		}
		r.Count++
		r.Bytes += bytes
		r.Pixels += pixels
	}
	var minT, maxT time.Duration
	for i, rec := range recs {
		if i == 0 || rec.T < minT {
			minT = rec.T
		}
		if rec.T > maxT {
			maxT = rec.T
		}
		switch rec.Dir {
		case DirUp:
			rep.UpBytes += int64(rec.Size)
		default:
			rep.DownBytes += int64(rec.Size)
		}
		if len(rec.Wire) == 0 {
			rep.SizeOnly++
			add(rec.Dir, "RAW", int64(rec.Size), 0)
			continue
		}
		if protocol.IsBatch(rec.Wire) {
			_, msgs, err := protocol.DecodeBatch(rec.Wire)
			if err != nil {
				rep.Undecoded++
				add(rec.Dir, "UNDECODED", int64(rec.Size), 0)
				continue
			}
			member := 0
			for _, m := range msgs {
				sz := protocol.WireSize(m)
				member += sz
				add(rec.Dir, m.Type().String(), int64(sz), int64(core.PixelsOf(m)))
			}
			if over := rec.Size - member; over > 0 {
				add(rec.Dir, "BATCH", int64(over), 0)
			}
			continue
		}
		rest := rec.Wire
		decoded := false
		for len(rest) > 0 {
			_, m, n, err := protocol.Decode(rest)
			if err != nil {
				break
			}
			add(rec.Dir, m.Type().String(), int64(n), int64(core.PixelsOf(m)))
			rest = rest[n:]
			decoded = true
		}
		if !decoded || len(rest) > 0 {
			rep.Undecoded++
			add(rec.Dir, "UNDECODED", int64(len(rest)), 0)
		}
	}
	if len(recs) > 0 {
		rep.Duration = maxT - minT
	}
	for k, r := range rows {
		if k.dir == DirUp {
			rep.Up = append(rep.Up, *r)
		} else {
			rep.Down = append(rep.Down, *r)
		}
	}
	byBytes := func(rs []Row) func(i, j int) bool {
		return func(i, j int) bool {
			if rs[i].Bytes != rs[j].Bytes {
				return rs[i].Bytes > rs[j].Bytes
			}
			return rs[i].Label < rs[j].Label
		}
	}
	sort.Slice(rep.Down, byBytes(rep.Down))
	sort.Slice(rep.Up, byBytes(rep.Up))
	return rep
}

// WriteTable renders the report in the shape of the paper's Tables 2-3:
// one row per command type with counts, byte volume, share, mean size,
// pixel payload, wire cost per pixel, and rates.
func (rep *Report) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "capture: %d records over %s (%s domain)", rep.Records,
		rep.Duration.Round(time.Millisecond), rep.Header.Domain)
	if !rep.Header.Epoch.IsZero() {
		fmt.Fprintf(w, ", epoch %s", rep.Header.Epoch.Format(time.RFC3339))
	}
	fmt.Fprintf(w, "\ndown %d bytes, up %d bytes", rep.DownBytes, rep.UpBytes)
	if rep.SizeOnly > 0 {
		fmt.Fprintf(w, ", %d size-only", rep.SizeOnly)
	}
	if rep.Undecoded > 0 {
		fmt.Fprintf(w, ", %d undecoded", rep.Undecoded)
	}
	fmt.Fprintln(w)
	if err := rep.writeDir(w, "server → console", rep.Down, rep.DownBytes); err != nil {
		return err
	}
	return rep.writeDir(w, "console → server", rep.Up, rep.UpBytes)
}

func (rep *Report) writeDir(w io.Writer, title string, rows []Row, total int64) error {
	if len(rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "\n%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "command\tcount\tbytes\t%%bytes\tB/cmd\tpixels\tB/px\tcmd/s\tbits/s\t\n")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Bytes) / float64(total)
		}
		bpp := "-"
		if r.Pixels > 0 {
			bpp = fmt.Sprintf("%.2f", r.BytesPerPixel())
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f%%\t%.1f\t%d\t%s\t%.1f\t%s\t\n",
			r.Label, r.Count, r.Bytes, pct, r.BytesPerCmd(), r.Pixels, bpp,
			rep.Rate(r), formatBits(rep.Bps(r)))
	}
	return tw.Flush()
}

func formatBits(bps float64) string {
	switch {
	case bps <= 0:
		return "-"
	case bps >= 1e6:
		return fmt.Sprintf("%.2fM", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1fk", bps/1e3)
	}
	return fmt.Sprintf("%.0f", bps)
}
