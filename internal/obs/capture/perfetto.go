// Chrome/Perfetto trace-event export for captures. The events land on a
// dedicated "wire" process with one track per direction, so loading a
// capture alongside a flight-recorder export (slimtrace flight -perfetto)
// lines datagrams up under the same microsecond timebase as the
// INPUT→ENCODE→TX→PAINT spans they carry.
package capture

import (
	"encoding/json"
	"fmt"
	"io"

	"slim/internal/protocol"
)

// wirePID keeps capture tracks clear of flight's per-session pids, which
// are real SLIM session ids counted from 1.
const wirePID = 999999

type perfettoEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Scope string         `json:"s,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []perfettoEvent `json:"traceEvents"`
}

// datagramName summarises one record for the track: the decoded command
// type (or batch census) plus the wire size.
func datagramName(rec Record) string {
	if len(rec.Wire) == 0 {
		return fmt.Sprintf("RAW %dB", rec.Size)
	}
	if protocol.IsBatch(rec.Wire) {
		if _, msgs, err := protocol.DecodeBatch(rec.Wire); err == nil {
			return fmt.Sprintf("SB×%d %dB", len(msgs), rec.Size)
		}
		return fmt.Sprintf("SB? %dB", rec.Size)
	}
	if _, m, _, err := protocol.Decode(rec.Wire); err == nil {
		return fmt.Sprintf("%s %dB", m.Type(), rec.Size)
	}
	return fmt.Sprintf("? %dB", rec.Size)
}

// WritePerfetto writes the capture as a Chrome trace-event JSON file.
func WritePerfetto(w io.Writer, h Header, recs []Record) error {
	evs := []perfettoEvent{
		{Name: "process_name", Ph: "M", PID: wirePID,
			Args: map[string]any{"name": "wire capture (" + string(h.Domain) + ")"}},
		{Name: "thread_name", Ph: "M", PID: wirePID, TID: int(DirDown),
			Args: map[string]any{"name": "down (server→console)"}},
		{Name: "thread_name", Ph: "M", PID: wirePID, TID: int(DirUp),
			Args: map[string]any{"name": "up (console→server)"}},
	}
	for _, rec := range recs {
		args := map[string]any{"bytes": rec.Size}
		if rec.Console != "" {
			args["console"] = rec.Console
		}
		if rec.Flow >= 0 {
			args["flow"] = rec.Flow
		}
		evs = append(evs, perfettoEvent{
			Name:  datagramName(rec),
			Cat:   "wire",
			Ph:    "i",
			Scope: "t",
			TS:    float64(rec.T.Nanoseconds()) / 1e3,
			PID:   wirePID,
			TID:   int(rec.Dir),
			Args:  args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(perfettoFile{DisplayTimeUnit: "ms", TraceEvents: evs})
}
