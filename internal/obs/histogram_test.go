package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the layout the package documents: log-spaced
// boundaries from 0.1 ms to 10 s, five per decade, with the paper's
// perception thresholds each resolved by a distinct bucket.
func TestBucketBoundaries(t *testing.T) {
	if got := NumHistogramBuckets(); got != 27 {
		t.Fatalf("NumHistogramBuckets() = %d, want 27", got)
	}
	if got := BoundarySeconds(0); got != 100e-6 {
		t.Errorf("BoundarySeconds(0) = %g, want 100µs", got)
	}
	if got := BoundarySeconds(numBoundaries - 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("BoundarySeconds(last) = %g, want 10s", got)
	}
	if got := BoundarySeconds(numBoundaries); !math.IsInf(got, 1) {
		t.Errorf("BoundarySeconds(overflow) = %g, want +Inf", got)
	}
	// Boundaries strictly increase by the decade ratio.
	for i := 1; i < numBoundaries; i++ {
		lo, hi := BoundarySeconds(i-1), BoundarySeconds(i)
		if hi <= lo {
			t.Fatalf("boundary %d (%g) not above boundary %d (%g)", i, hi, i-1, lo)
		}
		ratio := hi / lo
		want := math.Pow(10, 1.0/histPerDecade)
		if math.Abs(ratio-want) > 0.02 {
			t.Errorf("boundary ratio %d = %.3f, want ≈%.3f", i, ratio, want)
		}
	}
	// The paper's perception thresholds land in distinct buckets.
	idx20 := bucketIndex((20 * time.Millisecond).Nanoseconds())
	idx50 := bucketIndex((50 * time.Millisecond).Nanoseconds())
	idx150 := bucketIndex((150 * time.Millisecond).Nanoseconds())
	if idx20 == idx50 || idx50 == idx150 {
		t.Errorf("perception thresholds share a bucket: 20ms=%d 50ms=%d 150ms=%d", idx20, idx50, idx150)
	}
}

// TestBucketIndexEdges exercises the exact edge placement: an observation
// equal to a boundary belongs to that boundary's bucket, one nanosecond
// above moves to the next.
func TestBucketIndexEdges(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	for i := 0; i < numBoundaries; i++ {
		b := histBoundaries[i]
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(boundary %d = %dns) = %d, want %d", i, b, got, i)
		}
		if got := bucketIndex(b + 1); got != i+1 {
			t.Errorf("bucketIndex(boundary %d + 1ns) = %d, want %d", i, got, i+1)
		}
	}
	// Anything past the top boundary is overflow.
	if got := bucketIndex((time.Hour).Nanoseconds()); got != numBoundaries {
		t.Errorf("bucketIndex(1h) = %d, want overflow bucket %d", got, numBoundaries)
	}
}

func TestObserveClampsNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5 * time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Buckets[0] != 1 {
		t.Fatalf("negative observation: count=%d buckets[0]=%d, want 1/1", s.Count, s.Buckets[0])
	}
	if s.SumSeconds != 0 {
		t.Errorf("negative observation sum = %g, want 0", s.SumSeconds)
	}
}

func TestSnapshotPercentiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations spread uniformly over 1..100 ms: p50 ≈ 50 ms,
	// p99 ≈ 99 ms, within one bucket ratio (1.58×) of truth.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	checkWithin := func(name string, got, want float64) {
		t.Helper()
		lo, hi := want/1.6, want*1.6
		if got < lo || got > hi {
			t.Errorf("%s = %.4fs, want within [%.4f, %.4f]", name, got, lo, hi)
		}
	}
	checkWithin("p50", s.P50, 0.050)
	checkWithin("p95", s.P95, 0.095)
	checkWithin("p99", s.P99, 0.099)
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("percentiles not monotone: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot = %+v, want all-zero", s)
	}
	var nilHist *Histogram
	nilHist.Observe(time.Millisecond) // must not panic
	if got := nilHist.Count(); got != 0 {
		t.Errorf("nil histogram Count = %d", got)
	}
}

func TestOverflowQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 10; i++ {
		h.Observe(time.Minute) // all overflow
	}
	s := h.Snapshot()
	if s.Buckets[numBoundaries] != 10 {
		t.Fatalf("overflow bucket = %d, want 10", s.Buckets[numBoundaries])
	}
	// Quantiles in the unbounded bucket report the top finite boundary.
	if want := BoundarySeconds(numBoundaries - 1); s.P50 != want {
		t.Errorf("overflow p50 = %g, want top boundary %g", s.P50, want)
	}
}

func TestHistogramDelta(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	first := h.Snapshot()

	for i := 0; i < 50; i++ {
		h.Observe(100 * time.Millisecond)
	}
	second := h.Snapshot()

	d := second.Delta(first)
	if d.Count != 50 {
		t.Fatalf("delta count = %d, want 50", d.Count)
	}
	// The window holds only the 100 ms observations; the 1 ms ones from
	// before the first scrape must not drag the percentile down.
	if d.P50 < 0.05 {
		t.Errorf("windowed p50 = %g, want ≈0.1 (window is all 100ms)", d.P50)
	}

	// A reset between scrapes yields the newer snapshot unchanged.
	h.Reset()
	h.Observe(time.Millisecond)
	third := h.Snapshot()
	d = third.Delta(second)
	if d.Count != third.Count {
		t.Errorf("delta after reset count = %d, want %d (snapshot itself)", d.Count, third.Count)
	}
}

// TestConcurrentObserveSnapshot hammers one histogram from many writers
// while a reader snapshots continuously. Run under -race this verifies the
// lock-free hot path; in any mode it verifies no observation is lost.
func TestConcurrentObserveSnapshot(t *testing.T) {
	h := NewHistogram()
	const writers = 8
	const perWriter = 5000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.P50 > s.P99 {
					t.Errorf("snapshot percentiles inverted: %+v", s)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*perWriter+i) * time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish independently of the reader; stop the reader once the
	// expected count lands.
	deadline := time.After(30 * time.Second)
	for h.Count() < writers*perWriter {
		select {
		case <-deadline:
			t.Fatalf("timed out; count = %d, want %d", h.Count(), writers*perWriter)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perWriter)
	}
	var bucketTotal int64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != writers*perWriter {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, writers*perWriter)
	}
}
