package obs

import "time"

// Span is an input-to-paint latency span: it stamps an event at capture
// and, when finished, records the elapsed wall time into one or more
// histograms (typically the process-wide input-to-paint histogram plus the
// per-session one). The zero Span is inert, so call sites can stamp
// unconditionally and only arm the span for input events:
//
//	span := obs.StartSpan(global, perSession)
//	... encode → wire → decode → damage flush ...
//	span.End()
//
// Spans use the wall clock and therefore belong to DomainWall registries;
// simulator experiments account virtual time through netsim's own
// instruments instead.
type Span struct {
	start time.Time
	hists []*Histogram
}

// StartSpan stamps now as the capture time. Nil histograms are skipped at
// End, so callers may pass optional instruments unconditionally.
func StartSpan(hists ...*Histogram) Span {
	return Span{start: time.Now(), hists: hists}
}

// Active reports whether the span was armed by StartSpan.
func (s Span) Active() bool { return !s.start.IsZero() }

// Attach adds another histogram to record into at End — used when the
// destination (say, a per-session histogram) is only known after the span
// began. Attaching to an inert span is a no-op.
func (s *Span) Attach(h *Histogram) {
	if s.start.IsZero() || h == nil {
		return
	}
	s.hists = append(s.hists, h)
}

// Elapsed reports the time since capture (zero for an inert span) without
// ending the span — the breach check reads it after End has published the
// histograms.
func (s Span) Elapsed() time.Duration {
	if s.start.IsZero() {
		return 0
	}
	return time.Since(s.start)
}

// End records the elapsed time since capture into every histogram. Inert
// (zero) spans do nothing.
func (s Span) End() {
	if s.start.IsZero() {
		return
	}
	elapsed := time.Since(s.start)
	for _, h := range s.hists {
		h.Observe(elapsed)
	}
}

// ObserveSince records time elapsed since start into h — the one-line
// idiom for timing a code section:
//
//	defer obs.ObserveSince(h, time.Now())
func ObserveSince(h *Histogram, start time.Time) {
	h.Observe(time.Since(start))
}
