package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSplitName(t *testing.T) {
	for _, tc := range []struct {
		name, base, labels string
	}{
		{"slim_sessions", "slim_sessions", ""},
		{`slim_encoder_commands_total{type="SET"}`, "slim_encoder_commands_total", `type="SET"`},
		{`h{session="alice",host="a"}`, "h", `session="alice",host="a"`},
	} {
		base, labels := splitName(tc.name)
		if base != tc.base || labels != tc.labels {
			t.Errorf("splitName(%q) = %q, %q; want %q, %q", tc.name, base, labels, tc.base, tc.labels)
		}
	}
}

func TestCounterSumAcrossLabels(t *testing.T) {
	r := NewRegistry(DomainWall)
	r.Counter(`slim_encoder_commands_total{type="SET"}`).Add(3)
	r.Counter(`slim_encoder_commands_total{type="COPY"}`).Add(4)
	r.Counter("slim_other_total").Add(100)
	if got := r.Snapshot().CounterSum("slim_encoder_commands_total"); got != 7 {
		t.Errorf("CounterSum = %d, want 7", got)
	}
}

func TestHistogramMergeAcrossLabels(t *testing.T) {
	r := NewRegistry(DomainWall)
	r.Histogram("slim_itp_seconds").Observe(10 * time.Millisecond)
	r.Histogram(`slim_itp_seconds{session="a"}`).Observe(20 * time.Millisecond)
	r.Histogram("slim_unrelated_seconds").Observe(time.Second)
	m := r.Snapshot().HistogramMerge("slim_itp_seconds")
	if m.Count != 2 {
		t.Errorf("merged count = %d, want 2", m.Count)
	}
	if m.P99 > 0.1 {
		t.Errorf("merged p99 = %g, unrelated histogram leaked in", m.P99)
	}
}

// TestWritePrometheus pins the exposition contract: TYPE lines once per
// base name, labelled series preserved, cumulative histogram buckets with
// le labels plus _sum and _count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(DomainWall)
	r.Counter(`slim_cmds_total{type="SET"}`).Add(2)
	r.Counter(`slim_cmds_total{type="COPY"}`).Add(3)
	r.Gauge("slim_sessions").Set(1)
	h := r.Histogram("slim_lat_seconds")
	h.Observe(time.Millisecond)
	h.Observe(time.Minute) // overflow

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	if n := strings.Count(out, "# TYPE slim_cmds_total counter"); n != 1 {
		t.Errorf("TYPE line for labelled counter appears %d times, want 1\n%s", n, out)
	}
	for _, want := range []string{
		`slim_cmds_total{type="COPY"} 3`,
		`slim_cmds_total{type="SET"} 2`,
		"# TYPE slim_sessions gauge",
		"slim_sessions 1",
		"# TYPE slim_lat_seconds histogram",
		`slim_lat_seconds_bucket{le="+Inf"} 2`,
		"slim_lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals the count, and the
	// 1 ms observation is already included at le="0.001".
	if !strings.Contains(out, `slim_lat_seconds_bucket{le="0.001"} 1`) {
		t.Errorf("cumulative bucket at 1ms missing\n%s", out)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	wall := NewRegistry(DomainWall)
	sim := NewRegistry(DomainSim)
	wall.Counter("slim_wall_total").Inc()
	sim.Histogram("slim_sim_seconds").Observe(time.Millisecond)

	srv := httptest.NewServer(DebugMux(wall, sim))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("/metrics content type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "slim_wall_total 1") || !strings.Contains(body, "slim_sim_seconds_count 1") {
		t.Errorf("/metrics missing registries:\n%s", body)
	}

	resp, body = get("/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", resp.StatusCode)
	}
	var domains map[string]Snapshot
	if err := json.Unmarshal([]byte(body), &domains); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	if domains["wall"].Counters["slim_wall_total"] != 1 {
		t.Errorf("wall snapshot wrong: %+v", domains["wall"])
	}
	if domains["sim"].Histograms["slim_sim_seconds"].Count != 1 {
		t.Errorf("sim snapshot wrong: %+v", domains["sim"])
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	if _, err := ServeDebug("256.256.256.256:99999"); err == nil {
		t.Error("ServeDebug accepted an impossible address")
	}
}
