// Package flight is the causal flight recorder: an always-on, per-session
// ring buffer of typed protocol events covering the whole display path —
// input received, drawing op submitted, command encoded, transmitted,
// received, decoded, painted — linked into causal chains by the protocol
// sequence numbers that already flow end to end.
//
// The paper's methodology (§3.1, §5) is event-level: every input event and
// display command is timestamped so interactive latency can be decomposed
// after the fact. The aggregate histograms of internal/obs say *that* a
// paint blew past the 150 ms annoyance threshold; the flight recorder says
// *why*, by keeping the last few thousand events of every session in a
// lock-free ring that costs a handful of atomic stores per event when
// enabled and a single atomic load when disabled.
//
// Two read paths exist:
//
//   - /debug/trace?session=N&last=5s on the slimd debug endpoint renders a
//     session's recent events as Chrome/Perfetto trace-event JSON.
//   - When a session's input-to-paint latency crosses the configured
//     threshold (default the paper's 150 ms), the recorder snapshots that
//     session's recent events to a dump file on disk, so slow interactions
//     remain diagnosable after the fact.
//
// Clock domains follow internal/obs: a wall-domain recorder stamps events
// itself from a monotonic epoch; a sim-domain recorder refuses self-stamped
// records and only accepts explicit virtual timestamps (RecordAt), so
// simulated and wall time never share a ring.
package flight

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slim/internal/obs"
	"slim/internal/protocol"
)

// Kind classifies a flight-recorder event.
type Kind uint8

// Event kinds, in rough pipeline order.
const (
	// EvInput: an input event (keystroke, pointer update) reached the
	// server. Opens a new causal chain: the event's Cause is the fresh
	// input-chain ID inherited by everything recorded for this session
	// until the next input.
	EvInput Kind = iota + 1
	// EvOp: the application submitted one drawing op to the encoder.
	// A holds a server-defined op code.
	EvOp
	// EvEncode: the encoder lowered an op into one display command and
	// assigned it a sequence number. A = wire bytes, B = pixels touched.
	EvEncode
	// EvTx: the server handed the command to the transport. A = wire bytes.
	EvTx
	// EvRx: the console transport received the command, before decode.
	// A = wire bytes.
	EvRx
	// EvDecode: the console started decoding the command. A = modelled
	// service nanoseconds (0 without a cost model).
	EvDecode
	// EvPaint: the console applied the command to its frame buffer — the
	// pixels are on glass (or were shed: a dropped command records EvDrop
	// instead).
	EvPaint
	// EvStatus: a console heartbeat arrived. A = console's last applied
	// sequence, B = cumulative decode drops.
	EvStatus
	// EvNack: a console loss report arrived. A = first lost seq, B = last.
	EvNack
	// EvDrop: a command was lost — dropped on the wire, shed by the decode
	// queue, or rejected by a failing transport. A = wire bytes.
	EvDrop
	// EvLinkTx: a simulated link finished serializing a packet (virtual
	// time). A = payload bytes, B = flow ID.
	EvLinkTx
	// EvBreach: the session's input-to-paint latency crossed the breach
	// threshold. A = observed latency in nanoseconds, B = threshold.
	EvBreach
	// EvTxQueue: the flow governor queued a command instead of sending it
	// immediately — the session is pacing to its bandwidth grant. A = wire
	// bytes, B = queue depth after the enqueue.
	EvTxQueue
	// EvSupersede: the governor dropped a queued command because a newer
	// queued command fully covers its affected rect — the paper's
	// "send only latest state" shedding made visible. A = the superseding
	// sequence number, B = wire bytes shed.
	EvSupersede
)

var kindNames = [...]string{
	EvInput:     "INPUT",
	EvOp:        "OP",
	EvEncode:    "ENCODE",
	EvTx:        "TX",
	EvRx:        "RX",
	EvDecode:    "DECODE",
	EvPaint:     "PAINT",
	EvStatus:    "STATUS",
	EvNack:      "NACK",
	EvDrop:      "DROP",
	EvLinkTx:    "LINK_TX",
	EvBreach:    "BREACH",
	EvTxQueue:   "TXQ",
	EvSupersede: "SUPERSEDE",
}

// String names the event kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded protocol event.
type Event struct {
	// T is the event timestamp: monotonic wall time since the recorder's
	// epoch for wall-domain recorders, virtual time for sim-domain ones.
	T time.Duration `json:"t"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Cmd is the protocol message type, for protocol-level events.
	Cmd protocol.MsgType `json:"cmd,omitempty"`
	// Seq is the display-protocol sequence number. It links ENCODE → TX →
	// RX → DECODE → PAINT for one command across machines, which is what
	// makes the chains causal rather than merely temporal.
	Seq uint32 `json:"seq,omitempty"`
	// Cause is the input-chain ID: every event recorded for a session
	// between input N and input N+1 carries N's ID, so a dump links each
	// paint back to the keystroke that provoked it.
	Cause uint64 `json:"cause,omitempty"`
	// A and B are kind-specific payloads; see the Kind constants.
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
}

// DefaultRingSize is the per-session ring capacity in events. At a typing
// burst of ~100 display commands per second this holds well over the
// default 5 s dump window; bursty video sessions wrap sooner but the most
// recent events — the ones a breach dump wants — always survive.
const DefaultRingSize = 4096

// DefaultThreshold is the breach threshold: the paper's §3 annoyance
// bound of 150 ms.
const DefaultThreshold = 150 * time.Millisecond

// DefaultWindow is how far back a breach dump reaches.
const DefaultWindow = 5 * time.Second

// DefaultDumpGap rate-limits dumps per session: a pathological session
// breaching on every keystroke produces one dump per gap, not thousands.
const DefaultDumpGap = 5 * time.Second

// slot is one ring entry. All fields are atomics so concurrent writers
// (server goroutine, console loop) and snapshot readers never race: the
// version field is a seqlock — odd while a write is in flight, bumped to
// even when the slot is stable — and the payload is packed into five
// words. Claiming distinct indices via the ring cursor means two writers
// only ever collide on a slot when they race a full ring apart; the
// version check makes the reader skip such torn slots.
type slot struct {
	version atomic.Uint64
	t       atomic.Int64
	kcs     atomic.Uint64 // kind<<40 | cmd<<32 | seq
	cause   atomic.Uint64
	a, b    atomic.Int64
}

func (s *slot) store(ev Event) {
	v := s.version.Load()
	s.version.Store(v | 1) // odd: write in progress
	s.t.Store(int64(ev.T))
	s.kcs.Store(uint64(ev.Kind)<<40 | uint64(ev.Cmd)<<32 | uint64(ev.Seq))
	s.cause.Store(ev.Cause)
	s.a.Store(ev.A)
	s.b.Store(ev.B)
	s.version.Store((v | 1) + 1) // even: stable
}

// load copies the slot if it is stable, reporting ok=false for slots that
// are empty, mid-write, or were overwritten during the read.
func (s *slot) load() (Event, bool) {
	v1 := s.version.Load()
	if v1 == 0 || v1&1 == 1 {
		return Event{}, false
	}
	ev := Event{
		T:     time.Duration(s.t.Load()),
		Cause: s.cause.Load(),
		A:     s.a.Load(),
		B:     s.b.Load(),
	}
	kcs := s.kcs.Load()
	ev.Kind = Kind(kcs >> 40)
	ev.Cmd = protocol.MsgType(kcs >> 32)
	ev.Seq = uint32(kcs)
	if s.version.Load() != v1 {
		return Event{}, false
	}
	return ev, true
}

// SessionLog is one session's event ring. The zero value is not usable;
// obtain logs from Recorder.Session. A nil *SessionLog is inert: every
// recording method no-ops, so call sites instrument unconditionally.
type SessionLog struct {
	id    uint32
	rec   *Recorder
	mask  uint64
	slots []slot

	cursor atomic.Uint64
	// cause is the session's current input-chain ID (see Event.Cause).
	cause atomic.Uint64
	// lastDumpNs rate-limits breach dumps (wall nanoseconds since epoch).
	lastDumpNs atomic.Int64
}

// Armed reports whether recording is live — the guard call sites use
// before computing anything record-only (wire sizes, pixel counts).
func (l *SessionLog) Armed() bool {
	return l != nil && l.rec.enabled.Load()
}

// push claims the next ring index and writes the event.
func (l *SessionLog) push(ev Event) {
	i := l.cursor.Add(1) - 1
	l.slots[i&l.mask].store(ev)
}

// record stamps and records one event. Wall-domain recorders stamp from
// their monotonic epoch; sim-domain recorders stamp from the virtual clock
// (SetNow) and panic if it was never advanced, so simulated and wall time
// can still never share a ring by accident. The disabled path is a nil
// check plus one atomic load.
func (l *SessionLog) record(ev Event) {
	if !l.Armed() {
		return
	}
	if l.rec.domain == obs.DomainWall {
		ev.T = time.Since(l.rec.epoch)
	} else {
		ns := l.rec.nowNs.Load()
		if ns < 0 {
			panic("flight: self-stamped record on a sim-domain recorder; use RecordAt or advance SetNow")
		}
		ev.T = time.Duration(ns)
	}
	if ev.Cause == 0 {
		ev.Cause = l.cause.Load()
	}
	l.push(ev)
}

// RecordAt records one event with an explicit virtual timestamp. Only
// sim-domain recorders accept it — the mirror image of record — so a wall
// ring can never silently receive virtual time.
func (l *SessionLog) RecordAt(t time.Duration, ev Event) {
	if !l.Armed() {
		return
	}
	if l.rec.domain != obs.DomainSim {
		panic("flight: RecordAt on a wall-domain recorder; virtual timestamps need a sim-domain recorder")
	}
	ev.T = t
	l.push(ev)
}

// Input records an input event reaching the server and opens a new causal
// chain, returning the fresh input-chain ID. cmd is TypeKey or
// TypePointer; arg carries the key code or packed pointer position.
func (l *SessionLog) Input(cmd protocol.MsgType, arg int64) uint64 {
	if !l.Armed() {
		return 0
	}
	id := l.rec.inputID.Add(1)
	l.cause.Store(id)
	l.record(Event{Kind: EvInput, Cmd: cmd, Cause: id, A: arg})
	return id
}

// Cause reports the session's current input-chain ID — the ID the next
// recorded event will inherit. Harnesses capture it right after feeding an
// input so they can later attribute the resulting paint's latency to the
// correct chain (CheckBreachAt).
func (l *SessionLog) Cause() uint64 {
	if l == nil {
		return 0
	}
	return l.cause.Load()
}

// Op records one drawing op submitted to the encoder (code is
// caller-defined).
func (l *SessionLog) Op(code int64) {
	l.record(Event{Kind: EvOp, A: code})
}

// Encode records one display command leaving the encoder.
func (l *SessionLog) Encode(seq uint32, cmd protocol.MsgType, bytes, pixels int64) {
	l.record(Event{Kind: EvEncode, Cmd: cmd, Seq: seq, A: bytes, B: pixels})
}

// Tx records one command handed to the transport.
func (l *SessionLog) Tx(seq uint32, cmd protocol.MsgType, bytes int64) {
	l.record(Event{Kind: EvTx, Cmd: cmd, Seq: seq, A: bytes})
}

// Rx records one command received by the console transport.
func (l *SessionLog) Rx(seq uint32, cmd protocol.MsgType, bytes int64) {
	l.record(Event{Kind: EvRx, Cmd: cmd, Seq: seq, A: bytes})
}

// Decode records the console decoding one command (serviceNs is the
// modelled decode time, 0 without a cost model).
func (l *SessionLog) Decode(seq uint32, cmd protocol.MsgType, serviceNs int64) {
	l.record(Event{Kind: EvDecode, Cmd: cmd, Seq: seq, A: serviceNs})
}

// Paint records the console applying one command to its frame buffer.
func (l *SessionLog) Paint(seq uint32, cmd protocol.MsgType) {
	l.record(Event{Kind: EvPaint, Cmd: cmd, Seq: seq})
}

// Status records a console heartbeat.
func (l *SessionLog) Status(lastSeq, dropped uint32) {
	l.record(Event{Kind: EvStatus, Cmd: protocol.TypeStatus, A: int64(lastSeq), B: int64(dropped)})
}

// Nack records a console loss report for sequence range [from, to].
func (l *SessionLog) Nack(from, to uint32) {
	l.record(Event{Kind: EvNack, Cmd: protocol.TypeNack, A: int64(from), B: int64(to)})
}

// Drop records one command lost in transit or shed by the console.
func (l *SessionLog) Drop(seq uint32, cmd protocol.MsgType, bytes int64) {
	l.record(Event{Kind: EvDrop, Cmd: cmd, Seq: seq, A: bytes})
}

// TxQueue records the flow governor queueing one command for paced
// release (depth is the queue depth after the enqueue).
func (l *SessionLog) TxQueue(seq uint32, cmd protocol.MsgType, bytes, depth int64) {
	l.record(Event{Kind: EvTxQueue, Cmd: cmd, Seq: seq, A: bytes, B: depth})
}

// Supersede records the governor shedding a queued command whose rect is
// fully covered by the newer command bySeq.
func (l *SessionLog) Supersede(seq uint32, cmd protocol.MsgType, bySeq uint32, bytes int64) {
	l.record(Event{Kind: EvSupersede, Cmd: cmd, Seq: seq, A: int64(bySeq), B: bytes})
}

// Events returns the ring's surviving events in time order. A non-zero
// last keeps only events within that window of the newest event.
func (l *SessionLog) Events(last time.Duration) []Event {
	if l == nil {
		return nil
	}
	end := l.cursor.Load()
	n := end
	if n > uint64(len(l.slots)) {
		n = uint64(len(l.slots))
	}
	evs := make([]Event, 0, n)
	for i := end - n; i < end; i++ {
		if ev, ok := l.slots[i&l.mask].load(); ok && ev.Kind != 0 {
			evs = append(evs, ev)
		}
	}
	// Writers racing the snapshot can leave the tail slightly out of
	// order; sort restores the timeline.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	if last > 0 && len(evs) > 0 {
		cut := evs[len(evs)-1].T - last
		i := sort.Search(len(evs), func(i int) bool { return evs[i].T >= cut })
		evs = evs[i:]
	}
	return evs
}

// Recorder owns the per-session rings of one clock domain plus the breach
// policy. The zero value is not usable; call New.
type Recorder struct {
	domain   obs.Domain
	epoch    time.Time
	ringSize int

	enabled     atomic.Bool
	thresholdNs atomic.Int64
	windowNs    atomic.Int64
	dumpGapNs   atomic.Int64
	inputID     atomic.Uint64
	// nowNs is the sim-domain virtual clock (SetNow); -1 until first
	// advanced, which keeps self-stamped records on an undriven sim
	// recorder a hard error rather than silently stamping zero.
	nowNs atomic.Int64

	mu       sync.RWMutex
	sessions map[uint32]*SessionLog
	dumpDir  string
	// hostFn supplies host-runtime evidence (GC pause and CPU-starvation
	// windows in ring time) to breach attribution; nil means no host
	// monitor is wired and verdicts never blame HOST.
	hostFn func(asOf time.Duration) []HostWindow
	// pathFn supplies measured network-path evidence (the netqual
	// estimators) per session; nil means dumps carry no PathEvidence and
	// WIRE verdicts get a LINK sub-verdict only from chain loss evidence.
	pathFn func(session uint32, asOf time.Duration) *PathEvidence

	// Breach accounting, mirrored into an obs registry by Instrument so
	// scrapers (cmd/slimstat) see degradation without reading dumps.
	breaches   *obs.Counter
	dumpErrors *obs.Counter
	lastBreach *obs.Gauge
	breachN    atomic.Int64
}

// Default is the process-wide wall-clock recorder: enabled and
// instrumented into obs.Default. Breach dumps stay off until a dump
// directory is configured (slimd's -flight-dir flag, or SetDumpDir).
// Live servers and consoles record here unless redirected.
var Default = New(obs.DomainWall).Instrument(obs.Default)

// New returns an enabled recorder in the given clock domain with the
// default ring size, threshold, window, and dump rate limit.
func New(domain obs.Domain) *Recorder {
	r := &Recorder{
		domain:   domain,
		epoch:    time.Now(),
		ringSize: DefaultRingSize,
		sessions: make(map[uint32]*SessionLog),
	}
	r.enabled.Store(true)
	r.thresholdNs.Store(int64(DefaultThreshold))
	r.windowNs.Store(int64(DefaultWindow))
	r.dumpGapNs.Store(int64(DefaultDumpGap))
	r.nowNs.Store(-1)
	return r
}

// SetNow advances a sim-domain recorder's virtual clock. Once set, live
// components that self-stamp (servers, consoles) record at this virtual
// time, letting a virtual-time harness drive the real display path and
// still get honest stage timings out of the ring. Wall-domain recorders
// refuse it.
func (r *Recorder) SetNow(t time.Duration) {
	if r.domain != obs.DomainSim {
		panic("flight: SetNow on a wall-domain recorder")
	}
	r.nowNs.Store(int64(t))
}

// Now reports a sim-domain recorder's virtual clock (negative if never
// advanced).
func (r *Recorder) Now() time.Duration { return time.Duration(r.nowNs.Load()) }

// Instrument resolves the recorder's breach instruments in reg:
// slim_flight_breaches_total, slim_flight_dump_errors_total, and — wall
// domain only — slim_flight_last_breach_unix_ms (sim recorders publish
// slim_flight_last_breach_ns, virtual time).
func (r *Recorder) Instrument(reg *obs.Registry) *Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.breaches = reg.Counter("slim_flight_breaches_total")
	r.dumpErrors = reg.Counter("slim_flight_dump_errors_total")
	if r.domain == obs.DomainWall {
		r.lastBreach = reg.Gauge("slim_flight_last_breach_unix_ms")
	} else {
		r.lastBreach = reg.Gauge("slim_flight_last_breach_ns")
	}
	return r
}

// Domain reports the recorder's clock domain.
func (r *Recorder) Domain() obs.Domain { return r.domain }

// SetEnabled switches recording on or off. Disabled, every recording call
// costs one atomic load; the rings are retained.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether recording is live.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// SetThreshold sets the input-to-paint breach threshold (0 disables
// breach detection entirely).
func (r *Recorder) SetThreshold(d time.Duration) { r.thresholdNs.Store(int64(d)) }

// Threshold reports the breach threshold.
func (r *Recorder) Threshold() time.Duration { return time.Duration(r.thresholdNs.Load()) }

// SetWindow sets how far back breach dumps and default trace queries
// reach.
func (r *Recorder) SetWindow(d time.Duration) { r.windowNs.Store(int64(d)) }

// SetDumpGap sets the per-session minimum interval between breach dumps.
func (r *Recorder) SetDumpGap(d time.Duration) { r.dumpGapNs.Store(int64(d)) }

// SetDumpDir sets the directory breach dumps are written to. Empty (the
// default) records breaches in the instruments and the ring but writes no
// files.
func (r *Recorder) SetDumpDir(dir string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dumpDir = dir
}

// DumpDir reports the configured dump directory.
func (r *Recorder) DumpDir() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dumpDir
}

// SetHostEvidence wires a host-runtime monitor into breach attribution: fn
// is called on each breach with the detection time and must return the
// recent GC-pause and CPU-starvation windows in the ring's clock (see
// Clock). With evidence wired, a breach whose causal chain overlaps a host
// window gets a HOST verdict instead of blaming an innocent pipeline
// stage. Nil unwires.
func (r *Recorder) SetHostEvidence(fn func(asOf time.Duration) []HostWindow) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hostFn = fn
}

// Clock reports the recorder's current ring time: monotonic time since the
// epoch for wall-domain recorders, the virtual clock for sim-domain ones
// (negative if never advanced). Host monitors stamp their windows with it
// so attribution can overlap them against ring events directly.
func (r *Recorder) Clock() time.Duration {
	if r.domain == obs.DomainWall {
		return time.Since(r.epoch)
	}
	return time.Duration(r.nowNs.Load())
}

// Session returns the session's log, creating the ring on first use.
func (r *Recorder) Session(id uint32) *SessionLog {
	r.mu.RLock()
	l, ok := r.sessions[id]
	r.mu.RUnlock()
	if ok {
		return l
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if l, ok := r.sessions[id]; ok {
		return l
	}
	l = &SessionLog{
		id:    id,
		rec:   r,
		mask:  uint64(r.ringSize - 1),
		slots: make([]slot, r.ringSize),
	}
	r.sessions[id] = l
	return l
}

// Drop evicts a session's ring — the flight-recorder half of session
// termination (the obs half is Registry.Remove). Logs already held by
// components keep working but are no longer reachable or dumped.
func (r *Recorder) Drop(id uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, id)
}

// Sessions lists the session IDs with live rings, ascending.
func (r *Recorder) Sessions() []uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]uint32, 0, len(r.sessions))
	for id := range r.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Events returns a session's recent events (see SessionLog.Events). An
// unknown session yields nil.
func (r *Recorder) Events(id uint32, last time.Duration) []Event {
	r.mu.RLock()
	l := r.sessions[id]
	r.mu.RUnlock()
	return l.Events(last)
}

// BreachCount reports the number of threshold breaches observed.
func (r *Recorder) BreachCount() int64 { return r.breachN.Load() }
