package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Stage classifies the pipeline stage that dominated a breach's latency —
// the answer to "why was this frame late". The taxonomy follows the
// display path the flight recorder already records: encode on the server,
// governor queueing, the wire (including loss detection and retransmit),
// console decode, and the final paint/apply.
type Stage uint8

const (
	// StageUnattributed means the causal chain could not be walked: the
	// breach's input event (or its encoded commands) had already been
	// overwritten in the ring, so no stage can honestly be blamed.
	StageUnattributed Stage = iota
	// StageEncode: the server spent the time lowering ops into commands.
	StageEncode
	// StageQueue: the flow governor held the commands, pacing to the
	// console's bandwidth grant (or the send path stalled before TX).
	StageQueue
	// StageWire: the time went to the interconnect — serialization,
	// queueing in the link, or loss followed by NACK-driven retransmit.
	StageWire
	// StageDecode: the console's decode path was the bottleneck.
	StageDecode
	// StagePaint: decode finished promptly but the frame-buffer apply
	// lagged.
	StagePaint
	// StageHost: the time went to the host runtime, not the pipeline — the
	// breach's critical chain overlapped a recorded GC pause or
	// CPU-starvation window (see HostWindow) that explains the stall better
	// than any pipeline stage does. Without this verdict a stop-the-world
	// pause shows up as an inflated QUEUE or DECODE and an innocent stage
	// takes the blame.
	StageHost

	// NumStages sizes per-stage accounting arrays.
	NumStages = int(StageHost) + 1
)

var stageNames = [NumStages]string{
	StageUnattributed: "UNATTRIBUTED",
	StageEncode:       "ENCODE",
	StageQueue:        "QUEUE",
	StageWire:         "WIRE",
	StageDecode:       "DECODE",
	StagePaint:        "PAINT",
	StageHost:         "HOST",
}

// String names the stage.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// ParseStage converts a stage name back to a Stage.
func ParseStage(name string) (Stage, error) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), nil
		}
	}
	return StageUnattributed, fmt.Errorf("flight: unknown stage %q", name)
}

// MarshalJSON serializes the stage by name so dumps stay greppable.
func (s Stage) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a stage name.
func (s *Stage) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	st, err := ParseStage(name)
	if err != nil {
		return err
	}
	*s = st
	return nil
}

// HostWindow is one interval during which the host runtime was unable to
// run goroutines promptly: a garbage-collection pause or a CPU-starvation
// episode, as detected by the hostmon sampler. Timestamps are in the same
// clock as the flight ring's events (for the default wall recorder:
// monotonic time since the recorder's epoch), so attribution can overlap
// them directly against a breach's causal chain.
type HostWindow struct {
	// Start and End bound the window in ring time. An in-progress window
	// ends at the detector's last sample.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Kind is "gc" for a garbage-collection pause window, "cpu" for a
	// CPU-starvation (scheduler latency) window.
	Kind string `json:"kind"`
	// WorstNs is the worst single pause or scheduling latency observed
	// inside the window, in nanoseconds.
	WorstNs int64 `json:"worst_ns,omitempty"`
}

// Duration is the window's length.
func (w HostWindow) Duration() time.Duration { return w.End - w.Start }

// overlap is the length of the intersection of [w.Start, w.End] with
// [from, to], zero when disjoint.
func (w HostWindow) overlap(from, to time.Duration) time.Duration {
	lo, hi := w.Start, w.End
	if from > lo {
		lo = from
	}
	if to < hi {
		hi = to
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Verdict is one breach's automated attribution: the dominant stage plus
// the per-stage time split along the critical command's path. A verdict is
// computed by walking the causal chain (INPUT → ENCODE → TXQ → TX → RX →
// DECODE → PAINT, with DROP/NACK/SUPERSEDE as loss evidence) for the
// input-chain ID that breached.
type Verdict struct {
	// Chain is the input-chain ID that was walked.
	Chain uint64 `json:"chain"`
	// Stage is the dominant latency stage.
	Stage Stage `json:"stage"`
	// EncodeNs..PaintNs split the critical command's latency by stage.
	EncodeNs int64 `json:"encode_ns,omitempty"`
	QueueNs  int64 `json:"queue_ns,omitempty"`
	WireNs   int64 `json:"wire_ns,omitempty"`
	DecodeNs int64 `json:"decode_ns,omitempty"`
	PaintNs  int64 `json:"paint_ns,omitempty"`
	// Loss reports wire-loss evidence on the critical path: a DROP, a NACK
	// covering the sequence, or more than one TX (a retransmit).
	Loss bool `json:"loss,omitempty"`
	// Link is the WIRE sub-verdict — LinkLoss or LinkLatency — set when
	// the dominant stage is WIRE and path evidence (or chain loss
	// evidence) lets the breach distinguish a lossy path from a slow one.
	Link string `json:"link,omitempty"`
	// HostNs is the total overlap between the chain's lifetime and the
	// recorded host windows; HostKind names the overlapping evidence ("gc",
	// "cpu", or "gc+cpu"). Both are recorded whenever any overlap exists,
	// even when a pipeline stage still dominates.
	HostNs   int64  `json:"host_ns,omitempty"`
	HostKind string `json:"host_kind,omitempty"`
	// Seqs is how many display commands the chain encoded; Painted is how
	// many of them the console had painted by the time of the walk.
	Seqs    int `json:"seqs,omitempty"`
	Painted int `json:"painted,omitempty"`
}

// StageDuration returns the verdict's time in one stage.
func (v *Verdict) StageDuration(s Stage) time.Duration {
	switch s {
	case StageEncode:
		return time.Duration(v.EncodeNs)
	case StageQueue:
		return time.Duration(v.QueueNs)
	case StageWire:
		return time.Duration(v.WireNs)
	case StageDecode:
		return time.Duration(v.DecodeNs)
	case StagePaint:
		return time.Duration(v.PaintNs)
	case StageHost:
		return time.Duration(v.HostNs)
	}
	return 0
}

// seqPath accumulates one display command's per-stage timestamps while
// Attribute scans the ring.
type seqPath struct {
	encT            time.Duration
	queued          bool
	txT             time.Duration // first TX
	txN             int
	rxT             time.Duration
	haveRx          bool
	decT            time.Duration
	haveDec         bool
	paintT          time.Duration
	painted         bool
	dropped, nacked bool
}

// Attribute walks a session's recorded events and classifies the dominant
// latency stage for the given input chain, as of time asOf (the breach
// detection time, in the ring's clock domain). The walk is defensive about
// ring truncation: if the chain's INPUT event — or every command it
// encoded — has already been overwritten, the verdict is UNATTRIBUTED
// rather than a guess from partial evidence.
func Attribute(evs []Event, chain uint64, asOf time.Duration) Verdict {
	return AttributeWithHost(evs, chain, asOf, nil)
}

// AttributeWithHost is Attribute with host-runtime evidence: hostWins are
// the GC-pause and CPU-starvation windows recorded around the breach (ring
// clock). When the chain's lifetime overlaps them for at least as long as
// the dominant pipeline stage ran, the verdict is HOST — the stall is
// explained by the host runtime, and whatever stage the time landed in was
// a victim, not a cause. Smaller overlaps are kept as evidence (HostNs,
// HostKind) without changing the blame.
func AttributeWithHost(evs []Event, chain uint64, asOf time.Duration, hostWins []HostWindow) Verdict {
	v := Verdict{Chain: chain, Stage: StageUnattributed}
	if chain == 0 {
		return v
	}
	var inputT time.Duration
	haveInput := false
	for _, ev := range evs {
		if ev.Kind == EvInput && ev.Cause == chain {
			inputT, haveInput = ev.T, true
			break
		}
	}
	if !haveInput {
		return v // head of the chain already overwritten
	}
	// The chain's display commands are the ENCODE events carrying its ID;
	// everything downstream (TX/RX/DECODE/PAINT, retransmits, drops) joins
	// by sequence number regardless of which chain was current when it was
	// recorded — a retransmit fires under a *later* input's chain ID.
	paths := make(map[uint32]*seqPath)
	for _, ev := range evs {
		if ev.Kind == EvEncode && ev.Cause == chain {
			if _, ok := paths[ev.Seq]; !ok {
				paths[ev.Seq] = &seqPath{encT: ev.T}
			}
		}
	}
	if len(paths) == 0 {
		return v // commands truncated out of the ring (or no display response)
	}
	for _, ev := range evs {
		if ev.Kind == EvNack {
			from, to := uint32(ev.A), uint32(ev.B)
			for seq, p := range paths {
				if seq >= from && seq <= to {
					p.nacked = true
				}
			}
			continue
		}
		p, ok := paths[ev.Seq]
		if !ok {
			continue
		}
		switch ev.Kind {
		case EvTxQueue:
			p.queued = true
		case EvTx:
			if p.txN == 0 || ev.T < p.txT {
				p.txT = ev.T
			}
			p.txN++
		case EvRx:
			if !p.haveRx {
				p.rxT, p.haveRx = ev.T, true
			}
		case EvDecode:
			if !p.haveDec {
				p.decT, p.haveDec = ev.T, true
			}
		case EvPaint:
			if !p.painted || ev.T > p.paintT {
				p.paintT = ev.T
			}
			p.painted = true
		case EvDrop:
			p.dropped = true
		}
	}
	// The critical command is the one that finished last — or, if some
	// never painted, the unfinished one that has been open the longest.
	type scored struct {
		seq  uint32
		p    *seqPath
		done time.Duration
	}
	var all []scored
	for seq, p := range paths {
		done := asOf
		if p.painted {
			done = p.paintT
		}
		all = append(all, scored{seq, p, done})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].done != all[j].done {
			return all[i].done > all[j].done
		}
		return all[i].seq > all[j].seq
	})
	crit := all[0]
	p := crit.p

	clamp := func(d time.Duration) int64 {
		if d < 0 {
			return 0
		}
		return int64(d)
	}
	v.EncodeNs = clamp(p.encT - inputT)
	switch {
	case p.txN > 0:
		v.QueueNs = clamp(p.txT - p.encT)
		if p.haveRx {
			v.WireNs = clamp(p.rxT - p.txT)
		} else {
			// Sent but never received: the wire still owes us the command.
			v.WireNs = clamp(asOf - p.txT)
		}
	default:
		// Encoded but never transmitted: held server side.
		v.QueueNs = clamp(asOf - p.encT)
	}
	if p.haveRx {
		base := p.rxT
		if p.haveDec {
			v.DecodeNs = clamp(p.decT - p.rxT)
			base = p.decT
		}
		if p.painted {
			v.PaintNs = clamp(p.paintT - base)
		} else if p.haveDec {
			v.PaintNs = clamp(asOf - base)
		} else {
			v.DecodeNs = clamp(asOf - base)
		}
	}
	v.Loss = p.dropped || p.nacked || p.txN > 1
	v.Seqs = len(paths)
	for _, s := range all {
		if s.p.painted {
			v.Painted++
		}
	}
	v.Stage = StageEncode
	for _, st := range []Stage{StageQueue, StageWire, StageDecode, StagePaint} {
		if v.StageDuration(st) > v.StageDuration(v.Stage) {
			v.Stage = st
		}
	}
	// Host evidence: overlap every recorded GC/CPU window against the
	// chain's lifetime [input, done]. The windows come from a sampler, so
	// adjacent windows of the same kind never overlap each other; summing
	// per kind and taking the larger kind as the host total avoids double
	// counting an interval flagged as both gc and cpu.
	var gcNs, cpuNs int64
	for _, w := range hostWins {
		o := int64(w.overlap(inputT, crit.done))
		switch w.Kind {
		case "gc":
			gcNs += o
		default:
			cpuNs += o
		}
	}
	if gcNs > 0 || cpuNs > 0 {
		v.HostNs = max(gcNs, cpuNs)
		switch {
		case gcNs > 0 && cpuNs > 0:
			v.HostKind = "gc+cpu"
		case gcNs > 0:
			v.HostKind = "gc"
		default:
			v.HostKind = "cpu"
		}
		if v.HostNs >= int64(v.StageDuration(v.Stage)) {
			v.Stage = StageHost
		}
	}
	return v
}

// BlameTable aggregates breach verdicts into the per-stage blame histogram
// reported by `slimtrace blame` (and asserted by the SLO e2e — both go
// through this code path).
type BlameTable struct {
	// Total counts breaches added; Unattributed counts the subset whose
	// chain could not be walked.
	Total, Unattributed int
	// Counts, LatencyNs, and StageNs accumulate per dominant stage: how
	// many breaches it owned, their summed end-to-end latency, and the
	// summed time inside the blamed stage itself.
	Counts    [NumStages]int
	LatencyNs [NumStages]int64
	StageNs   [NumStages]int64
	// Loss counts breaches with wire-loss evidence on the critical path.
	Loss int
}

// Add accumulates one breach dump's verdict. Dumps without a verdict
// (written by older recorders) count as unattributed.
func (t *BlameTable) Add(d *Dump) {
	if d.Verdict == nil {
		t.AddVerdict(Verdict{Stage: StageUnattributed}, d.LatencyNs)
		return
	}
	t.AddVerdict(*d.Verdict, d.LatencyNs)
}

// AddVerdict accumulates one verdict with its breach latency.
func (t *BlameTable) AddVerdict(v Verdict, latencyNs int64) {
	t.Total++
	if v.Stage == StageUnattributed {
		t.Unattributed++
	}
	t.Counts[v.Stage]++
	t.LatencyNs[v.Stage] += latencyNs
	t.StageNs[v.Stage] += int64(v.StageDuration(v.Stage))
	if v.Loss {
		t.Loss++
	}
}

// Share is the fraction of breaches blamed on a stage (0 when empty).
func (t *BlameTable) Share(s Stage) float64 {
	if t.Total == 0 {
		return 0
	}
	return float64(t.Counts[s]) / float64(t.Total)
}

// Format renders the blame table, stages ordered by blame count.
func (t *BlameTable) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d breaches (%d with loss evidence, %d unattributed)\n",
		t.Total, t.Loss, t.Unattributed); err != nil {
		return err
	}
	if t.Total == 0 {
		return nil
	}
	order := make([]Stage, 0, NumStages)
	for i := 0; i < NumStages; i++ {
		order = append(order, Stage(i))
	}
	sort.SliceStable(order, func(i, j int) bool { return t.Counts[order[i]] > t.Counts[order[j]] })
	fmt.Fprintf(w, "%-13s %9s %7s %12s %12s\n", "STAGE", "BREACHES", "SHARE", "AVG-LATENCY", "AVG-STAGE")
	for _, st := range order {
		n := t.Counts[st]
		if n == 0 {
			continue
		}
		avgLat := time.Duration(t.LatencyNs[st] / int64(n)).Round(time.Millisecond)
		avgStage := time.Duration(t.StageNs[st] / int64(n)).Round(time.Millisecond)
		if _, err := fmt.Fprintf(w, "%-13s %9d %6.1f%% %12s %12s\n",
			st, n, 100*t.Share(st), avgLat, avgStage); err != nil {
			return err
		}
	}
	return nil
}
