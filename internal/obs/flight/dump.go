package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"slim/internal/obs"
)

// Dump is one breach snapshot: the events a session recorded in the
// window leading up to an input-to-paint latency breach, plus enough
// context to analyze the file on its own. Dumps serialize as JSON; read
// them back with ReadDump, convert them to §3.1 offline traces with
// trace.FromFlight, or export them to Perfetto with slimtrace flight.
type Dump struct {
	// Session is the breaching session's ID.
	Session uint32 `json:"session"`
	// Domain is the recorder's clock domain (event timestamps follow it).
	Domain obs.Domain `json:"domain"`
	// LatencyNs is the input-to-paint latency that tripped the dump.
	LatencyNs int64 `json:"latency_ns"`
	// ThresholdNs is the breach threshold at the time.
	ThresholdNs int64 `json:"threshold_ns"`
	// WindowNs is how far back Events reaches.
	WindowNs int64 `json:"window_ns"`
	// CapturedAt is the wall-clock capture time.
	CapturedAt time.Time `json:"captured_at"`
	// Verdict is the automated attribution for this breach: the dominant
	// latency stage along the breaching chain's critical command (see
	// Attribute). Nil in dumps from recorders that predate attribution.
	Verdict *Verdict `json:"verdict,omitempty"`
	// HostWindows are the host-runtime stall windows (GC pauses, CPU
	// starvation) known at capture time — the evidence behind a HOST
	// verdict, kept so `slimtrace blame -reattribute` can re-run host
	// attribution offline. Empty when no host monitor was wired.
	HostWindows []HostWindow `json:"host_windows,omitempty"`
	// PathEvidence is the session's measured network-path state (SRTT,
	// jitter, loss, goodput) at detection time — the evidence behind a
	// WIRE verdict's LINK sub-verdict. Nil when no path estimator was
	// wired.
	PathEvidence *PathEvidence `json:"path_evidence,omitempty"`
	// Events is the causal event log, oldest first.
	Events []Event `json:"events"`
}

// Write serializes the dump as indented JSON.
func (d *Dump) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDump deserializes one breach dump.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("flight: decode dump: %w", err)
	}
	return &d, nil
}

// Breach describes one detected threshold crossing: the attribution
// verdict for the breaching chain, and the dump file it was snapshotted
// to ("" when no dump was written — dumps are rate limited and need a
// configured directory; the verdict is computed regardless).
type Breach struct {
	Path    string
	Verdict Verdict
}

// CheckBreach is the server's post-paint hook: called with each input
// event's observed input-to-paint latency, it detects threshold crossings
// and snapshots the session's recent events to disk. Below-threshold
// latencies return immediately (one atomic load); breaches are counted,
// marked in the ring (EvBreach), attributed to their dominant latency
// stage, published through the breach instruments, and — when a dump
// directory is configured and the session's rate limit allows — written
// as a dump file. Wall domain only; virtual-time harnesses use
// CheckBreachAt.
func (r *Recorder) CheckBreach(id uint32, latency time.Duration) (Breach, bool) {
	if r.domain != obs.DomainWall {
		panic("flight: CheckBreach on a sim-domain recorder; use CheckBreachAt")
	}
	return r.checkBreach(id, 0, latency, time.Since(r.epoch))
}

// CheckBreachAt is CheckBreach for sim-domain recorders: the harness that
// resolved the paint supplies the input-chain ID (0 means the session's
// current chain) and the virtual detection time.
func (r *Recorder) CheckBreachAt(id uint32, chain uint64, latency, now time.Duration) (Breach, bool) {
	if r.domain != obs.DomainSim {
		panic("flight: CheckBreachAt on a wall-domain recorder; use CheckBreach")
	}
	return r.checkBreach(id, chain, latency, now)
}

func (r *Recorder) checkBreach(id uint32, chain uint64, latency, now time.Duration) (Breach, bool) {
	threshold := time.Duration(r.thresholdNs.Load())
	if threshold <= 0 || latency < threshold || !r.enabled.Load() {
		return Breach{}, false
	}
	r.mu.RLock()
	l := r.sessions[id]
	dir := r.dumpDir
	hostFn := r.hostFn
	pathFn := r.pathFn
	r.mu.RUnlock()
	if l == nil {
		return Breach{}, false
	}
	if chain == 0 {
		chain = l.cause.Load()
	}
	n := r.breachN.Add(1)
	r.breaches.Inc()
	if r.domain == obs.DomainWall {
		r.lastBreach.Set(time.Now().UnixMilli())
		l.record(Event{Kind: EvBreach, A: int64(latency), B: int64(threshold)})
	} else {
		r.lastBreach.Set(now.Nanoseconds())
		l.RecordAt(now, Event{Kind: EvBreach, Cause: chain, A: int64(latency), B: int64(threshold)})
	}
	window := time.Duration(r.windowNs.Load())
	evs := l.Events(window)
	var hostWins []HostWindow
	if hostFn != nil {
		hostWins = hostFn(now)
	}
	var pathEv *PathEvidence
	if pathFn != nil {
		pathEv = pathFn(id, now)
	}
	br := Breach{Verdict: AttributeWithHost(evs, chain, now, hostWins)}
	if br.Verdict.Stage == StageWire {
		br.Verdict.Link = classifyLink(&br.Verdict, pathEv)
	}
	if dir == "" {
		return br, true
	}
	// Per-session dump rate limit: the first breach of a storm is the
	// interesting one; the rest would dump near-identical rings.
	last := l.lastDumpNs.Load()
	gap := r.dumpGapNs.Load()
	if last != 0 && now.Nanoseconds()-last < gap {
		return br, true
	}
	if !l.lastDumpNs.CompareAndSwap(last, now.Nanoseconds()) {
		return br, true // another breach is already dumping
	}
	verdict := br.Verdict
	d := &Dump{
		Session:      id,
		Domain:       r.domain,
		LatencyNs:    int64(latency),
		ThresholdNs:  int64(threshold),
		WindowNs:     int64(window),
		CapturedAt:   time.Now(),
		Verdict:      &verdict,
		HostWindows:  hostWins,
		PathEvidence: pathEv,
		Events:       evs,
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-sess%d-%d.json", id, n))
	f, err := os.Create(path)
	if err != nil {
		r.dumpErrors.Inc()
		return br, true
	}
	err = d.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		r.dumpErrors.Inc()
		return br, true
	}
	br.Path = path
	return br, true
}
