package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Perfetto (Chrome trace-event JSON) export. Each session renders as one
// process; pipeline stages (input, encode, transport, console, link) are
// threads within it, so the Perfetto timeline shows a command descending
// through the stack. Flow arrows connect each input event to the paints
// it caused, via the input-chain IDs.
//
// The format reference is the Chrome Trace Event Format document; Perfetto
// (ui.perfetto.dev) loads these files directly.

// perfettoEvent is one trace-event JSON object.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  uint32         `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the top-level JSON object.
type perfettoFile struct {
	DisplayTimeUnit string          `json:"displayTimeUnit"`
	TraceEvents     []perfettoEvent `json:"traceEvents"`
}

// Pipeline lanes (Perfetto thread IDs) in display order.
const (
	laneInput = iota + 1
	laneEncode
	laneTransport
	laneConsole
	laneLink
	laneBreach
)

func lane(k Kind) int {
	switch k {
	case EvInput:
		return laneInput
	case EvOp, EvEncode:
		return laneEncode
	case EvTx, EvRx, EvDrop, EvTxQueue, EvSupersede:
		return laneTransport
	case EvDecode, EvPaint, EvStatus, EvNack:
		return laneConsole
	case EvLinkTx:
		return laneLink
	case EvBreach:
		return laneBreach
	}
	return laneBreach
}

var laneNames = map[int]string{
	laneInput:     "input",
	laneEncode:    "encode",
	laneTransport: "transport",
	laneConsole:   "console",
	laneLink:      "link",
	laneBreach:    "breach",
}

// eventName renders a human-readable slice name.
func eventName(ev Event) string {
	if ev.Cmd != 0 && ev.Kind != EvInput {
		return ev.Kind.String() + " " + ev.Cmd.String()
	}
	if ev.Kind == EvInput {
		return "INPUT " + ev.Cmd.String()
	}
	return ev.Kind.String()
}

// appendSession renders one session's events into out.
func appendSession(out []perfettoEvent, session uint32, evs []Event) []perfettoEvent {
	out = append(out, perfettoEvent{
		Name: "process_name", Ph: "M", PID: session, TID: 0,
		Args: map[string]any{"name": fmt.Sprintf("session %d", session)},
	})
	for tid := laneInput; tid <= laneBreach; tid++ {
		out = append(out, perfettoEvent{
			Name: "thread_name", Ph: "M", PID: session, TID: tid,
			Args: map[string]any{"name": laneNames[tid]},
		})
	}
	// Track which input chains saw a paint, to emit flow arrows.
	paintTS := make(map[uint64]float64)
	for _, ev := range evs {
		ts := float64(ev.T.Nanoseconds()) / 1e3
		pe := perfettoEvent{
			Name: eventName(ev),
			Cat:  ev.Kind.String(),
			Ph:   "X",
			TS:   ts,
			Dur:  1, // instantaneous pipeline marks; 1 µs keeps them clickable
			PID:  session,
			TID:  lane(ev.Kind),
			Args: map[string]any{"seq": ev.Seq, "cause": ev.Cause, "a": ev.A, "b": ev.B},
		}
		if ev.Kind == EvDecode && ev.A > 0 {
			pe.Dur = float64(ev.A) / 1e3 // modelled decode time
		}
		out = append(out, pe)
		switch ev.Kind {
		case EvInput:
			out = append(out, perfettoEvent{
				Name: "input-chain", Ph: "s", TS: ts, PID: session,
				TID: laneInput, ID: strconv.FormatUint(ev.Cause, 10),
			})
		case EvPaint:
			if ev.Cause != 0 {
				paintTS[ev.Cause] = ts
			}
		}
	}
	for cause, ts := range paintTS {
		out = append(out, perfettoEvent{
			Name: "input-chain", Ph: "f", BP: "e", TS: ts, PID: session,
			TID: laneConsole, ID: strconv.FormatUint(cause, 10),
		})
	}
	return out
}

// WritePerfetto renders one session's event slice as a Perfetto
// trace-event JSON file.
func WritePerfetto(w io.Writer, session uint32, evs []Event) error {
	f := perfettoFile{
		DisplayTimeUnit: "ms",
		TraceEvents:     appendSession(nil, session, evs),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WritePerfetto renders recent events — one session, or all of them when
// id is 0 and the recorder tracks several — as Perfetto trace-event JSON.
func (r *Recorder) WritePerfetto(w io.Writer, id uint32, last time.Duration) error {
	var out []perfettoEvent
	ids := []uint32{id}
	if id == 0 {
		ids = r.Sessions()
	}
	for _, sid := range ids {
		if evs := r.Events(sid, last); len(evs) > 0 {
			out = appendSession(out, sid, evs)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(perfettoFile{DisplayTimeUnit: "ms", TraceEvents: out})
}

// TraceHandler serves the recorder over HTTP — mounted at /debug/trace on
// the slimd debug endpoint:
//
//	GET /debug/trace                  all sessions, default window
//	GET /debug/trace?session=3        one session
//	GET /debug/trace?last=5s          bound the lookback window
//
// The response is Chrome/Perfetto trace-event JSON; load it at
// ui.perfetto.dev or chrome://tracing.
func (r *Recorder) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var id uint32
		if s := req.URL.Query().Get("session"); s != "" {
			n, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				http.Error(w, "bad session: "+err.Error(), http.StatusBadRequest)
				return
			}
			id = uint32(n)
		}
		last := time.Duration(r.windowNs.Load())
		if s := req.URL.Query().Get("last"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, "bad last: "+err.Error(), http.StatusBadRequest)
				return
			}
			last = d
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WritePerfetto(w, id, last)
	})
}
