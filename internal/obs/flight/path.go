package flight

import "time"

// PathEvidence is the measured network-path state stamped into a breach:
// the passive per-session estimates (internal/obs/netqual) read at
// detection time. A WIRE verdict without it says "the time went to the
// network"; with it, the dump says what the network actually looked like
// — and the LINK sub-verdict says whether loss or latency is the better
// explanation.
type PathEvidence struct {
	// SRTTNs/RTTVarNs/MinRTTNs/JitterNs are the smoothed estimators in
	// nanoseconds (RFC 6298 EWMAs; inter-arrival jitter).
	SRTTNs   int64 `json:"srtt_ns"`
	RTTVarNs int64 `json:"rttvar_ns,omitempty"`
	MinRTTNs int64 `json:"min_rtt_ns,omitempty"`
	JitterNs int64 `json:"jitter_ns,omitempty"`
	// Samples is how many RTT samples back the estimates.
	Samples int64 `json:"rtt_samples,omitempty"`
	// LossShort/LossLong are loss fractions over the estimator's short
	// (pacer-facing) and long (steady-state) windows.
	LossShort float64 `json:"loss_short,omitempty"`
	LossLong  float64 `json:"loss_long,omitempty"`
	// GoodputBps is delivered (console-acknowledged) goodput over the
	// short window.
	GoodputBps float64 `json:"goodput_bps,omitempty"`
}

// Link sub-verdict values: what a WIRE breach's path evidence points at.
const (
	// LinkLoss: the path was losing packets — the wire time is loss plus
	// NACK-driven recovery, and FEC/ARQ tuning is the lever.
	LinkLoss = "loss"
	// LinkLatency: the path was clean but slow — the wire time is
	// RTT/serialization, and pacing or proximity is the lever.
	LinkLatency = "latency"
)

// linkLossThreshold is the short-window loss fraction above which a WIRE
// breach is classified loss-driven even without loss evidence on the
// critical chain itself.
const linkLossThreshold = 0.005

// classifyLink distinguishes loss-driven from latency-driven WIRE
// breaches. Loss evidence on the critical path (a DROP, a covering NACK,
// a retransmit) or measured short-window loss wins; otherwise the wire
// time is explained by the path's latency.
func classifyLink(v *Verdict, pe *PathEvidence) string {
	if v.Loss {
		return LinkLoss
	}
	if pe != nil && pe.LossShort > linkLossThreshold {
		return LinkLoss
	}
	return LinkLatency
}

// SetPathEvidence wires a path estimator into breach dumps: fn is called
// at breach-detection time with the breaching session's ID and the
// detection time (ring clock) and returns the session's measured path
// state, or nil when the estimator knows nothing about the session. The
// evidence is stamped into the dump, and WIRE verdicts gain a LINK
// sub-verdict. The server wires this to the netqual tracker; nil unwires.
func (r *Recorder) SetPathEvidence(fn func(session uint32, asOf time.Duration) *PathEvidence) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pathFn = fn
}
