package flight

import (
	"os"
	"testing"
	"time"

	"slim/internal/obs"
	"slim/internal/protocol"
)

// TestCheckBreachPathEvidence: with a path estimator wired, a WIRE breach
// dump carries the measured path state and a LINK sub-verdict.
func TestCheckBreachPathEvidence(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	rec := New(obs.DomainWall).Instrument(reg)
	rec.SetThreshold(50 * time.Millisecond)
	rec.SetDumpGap(0)
	rec.SetDumpDir(t.TempDir())
	l := rec.Session(1)

	// A wire-dominated chain: sent promptly, slow to arrive.
	l.Input(protocol.TypeKey, 'x')
	l.Encode(9, protocol.TypeBitmap, 100, 64)
	l.Tx(9, protocol.TypeBitmap, 100)
	time.Sleep(30 * time.Millisecond)
	l.Rx(9, protocol.TypeBitmap, 100)
	l.Paint(9, protocol.TypeBitmap)

	// The estimator reports a lossy path at breach time.
	var askedSession uint32
	rec.SetPathEvidence(func(session uint32, asOf time.Duration) *PathEvidence {
		askedSession = session
		return &PathEvidence{
			SRTTNs:    int64(25 * time.Millisecond),
			JitterNs:  int64(2 * time.Millisecond),
			Samples:   40,
			LossShort: 0.04,
			LossLong:  0.03,
		}
	})
	br, breached := rec.CheckBreach(1, 200*time.Millisecond)
	if !breached {
		t.Fatal("breach not detected")
	}
	if askedSession != 1 {
		t.Errorf("path evidence asked for session %d, want 1", askedSession)
	}
	if br.Verdict.Stage != StageWire {
		t.Fatalf("stage = %v, want WIRE (verdict %+v)", br.Verdict.Stage, br.Verdict)
	}
	if br.Verdict.Link != LinkLoss {
		t.Errorf("link = %q, want %q (4%% short-window loss)", br.Verdict.Link, LinkLoss)
	}
	if br.Path == "" {
		t.Fatal("no dump written")
	}
	f, err := os.Open(br.Path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if d.PathEvidence == nil {
		t.Fatal("dump has no path evidence")
	}
	if d.PathEvidence.SRTTNs != int64(25*time.Millisecond) || d.PathEvidence.LossShort != 0.04 {
		t.Errorf("dump path evidence = %+v", d.PathEvidence)
	}
	if d.Verdict == nil || d.Verdict.Link != LinkLoss {
		t.Fatalf("dump verdict = %+v, want LINK=loss", d.Verdict)
	}

	// A clean path flips the same wire breach to latency-driven.
	rec.SetPathEvidence(func(uint32, time.Duration) *PathEvidence {
		return &PathEvidence{SRTTNs: int64(120 * time.Millisecond), Samples: 40}
	})
	br, _ = rec.CheckBreach(1, 200*time.Millisecond)
	if br.Verdict.Stage == StageWire && br.Verdict.Link != LinkLatency {
		t.Errorf("clean-path link = %q, want %q", br.Verdict.Link, LinkLatency)
	}

	// Unwired: no evidence in dumps, but chain loss evidence still
	// classifies the link.
	rec.SetPathEvidence(nil)
	br, _ = rec.CheckBreach(1, 200*time.Millisecond)
	if br.Verdict.Stage == StageWire && br.Verdict.Link == "" {
		t.Error("WIRE verdict lost its LINK sub-verdict without a path estimator")
	}
}

// TestClassifyLink pins the sub-verdict decision table.
func TestClassifyLink(t *testing.T) {
	cases := []struct {
		name string
		v    Verdict
		pe   *PathEvidence
		want string
	}{
		{"chain loss wins", Verdict{Loss: true}, nil, LinkLoss},
		{"measured loss", Verdict{}, &PathEvidence{LossShort: 0.02}, LinkLoss},
		{"clean path", Verdict{}, &PathEvidence{SRTTNs: 1e8}, LinkLatency},
		{"sub-threshold loss", Verdict{}, &PathEvidence{LossShort: 0.001}, LinkLatency},
		{"no evidence", Verdict{}, nil, LinkLatency},
	}
	for _, c := range cases {
		if got := classifyLink(&c.v, c.pe); got != c.want {
			t.Errorf("%s: classifyLink = %q, want %q", c.name, got, c.want)
		}
	}
}
