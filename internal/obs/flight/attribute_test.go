package flight

import (
	"os"
	"strings"
	"testing"
	"time"

	"slim/internal/obs"
	"slim/internal/protocol"
)

// ms builds an event timestamp.
func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestAttributeWireLoss walks the canonical loss chain: the command is
// encoded and sent promptly, dropped on the wire, nacked by the console
// when the gap is noticed, retransmitted (under a later input's chain ID,
// as live servers do), and finally painted. The verdict must blame the
// wire, with loss evidence, not the stages that were fast.
func TestAttributeWireLoss(t *testing.T) {
	const chain = 7
	evs := []Event{
		{T: ms(0), Kind: EvInput, Cmd: protocol.TypeKey, Cause: chain},
		{T: ms(2), Kind: EvEncode, Cmd: protocol.TypeBitmap, Seq: 41, Cause: chain, A: 300},
		{T: ms(3), Kind: EvTx, Cmd: protocol.TypeBitmap, Seq: 41, Cause: chain},
		{T: ms(3), Kind: EvDrop, Cmd: protocol.TypeBitmap, Seq: 41, Cause: chain},
		// Next input's traffic reveals the gap; everything below carries a
		// later chain ID.
		{T: ms(200), Kind: EvNack, Cmd: protocol.TypeNack, Cause: chain + 1, A: 41, B: 41},
		{T: ms(201), Kind: EvTx, Cmd: protocol.TypeBitmap, Seq: 41, Cause: chain + 1},
		{T: ms(205), Kind: EvRx, Cmd: protocol.TypeBitmap, Seq: 41, Cause: chain + 1},
		{T: ms(206), Kind: EvDecode, Cmd: protocol.TypeBitmap, Seq: 41, Cause: chain + 1},
		{T: ms(207), Kind: EvPaint, Cmd: protocol.TypeBitmap, Seq: 41, Cause: chain + 1},
	}
	v := Attribute(evs, chain, ms(207))
	if v.Stage != StageWire {
		t.Fatalf("stage = %v, want WIRE (verdict %+v)", v.Stage, v)
	}
	if !v.Loss {
		t.Error("loss evidence not detected")
	}
	if got, want := v.WireNs, int64(202*time.Millisecond); got != want {
		t.Errorf("wire time = %v, want %v", time.Duration(got), time.Duration(want))
	}
	if v.Seqs != 1 || v.Painted != 1 {
		t.Errorf("seqs=%d painted=%d, want 1/1", v.Seqs, v.Painted)
	}
}

// TestAttributeQueue blames the governor when the command sat in the
// paced queue for most of the latency.
func TestAttributeQueue(t *testing.T) {
	const chain = 9
	evs := []Event{
		{T: ms(0), Kind: EvInput, Cmd: protocol.TypeKey, Cause: chain},
		{T: ms(1), Kind: EvEncode, Cmd: protocol.TypeFill, Seq: 10, Cause: chain},
		{T: ms(1), Kind: EvTxQueue, Cmd: protocol.TypeFill, Seq: 10, Cause: chain, B: 12},
		{T: ms(180), Kind: EvTx, Cmd: protocol.TypeFill, Seq: 10, Cause: chain},
		{T: ms(183), Kind: EvRx, Cmd: protocol.TypeFill, Seq: 10, Cause: chain},
		{T: ms(184), Kind: EvPaint, Cmd: protocol.TypeFill, Seq: 10, Cause: chain},
	}
	v := Attribute(evs, chain, ms(184))
	if v.Stage != StageQueue {
		t.Fatalf("stage = %v, want QUEUE (verdict %+v)", v.Stage, v)
	}
	if v.Loss {
		t.Error("queueing misreported as loss")
	}
}

// TestAttributeEncodeAndDecode covers the compute-bound stages.
func TestAttributeEncodeAndDecode(t *testing.T) {
	const chain = 11
	enc := []Event{
		{T: ms(0), Kind: EvInput, Cause: chain},
		{T: ms(170), Kind: EvEncode, Seq: 3, Cause: chain},
		{T: ms(171), Kind: EvTx, Seq: 3, Cause: chain},
		{T: ms(172), Kind: EvRx, Seq: 3, Cause: chain},
		{T: ms(173), Kind: EvPaint, Seq: 3, Cause: chain},
	}
	if v := Attribute(enc, chain, ms(173)); v.Stage != StageEncode {
		t.Errorf("stage = %v, want ENCODE", v.Stage)
	}
	dec := []Event{
		{T: ms(0), Kind: EvInput, Cause: chain},
		{T: ms(1), Kind: EvEncode, Seq: 3, Cause: chain},
		{T: ms(2), Kind: EvTx, Seq: 3, Cause: chain},
		{T: ms(3), Kind: EvRx, Seq: 3, Cause: chain},
		{T: ms(160), Kind: EvDecode, Seq: 3, Cause: chain},
		{T: ms(162), Kind: EvPaint, Seq: 3, Cause: chain},
	}
	if v := Attribute(dec, chain, ms(162)); v.Stage != StageDecode {
		t.Errorf("stage = %v, want DECODE", v.Stage)
	}
}

// TestAttributeOpenChain charges an in-flight command's elapsed time to
// the stage holding it: sent but never received means the wire owes it.
func TestAttributeOpenChain(t *testing.T) {
	const chain = 13
	evs := []Event{
		{T: ms(0), Kind: EvInput, Cause: chain},
		{T: ms(1), Kind: EvEncode, Seq: 8, Cause: chain},
		{T: ms(2), Kind: EvTx, Seq: 8, Cause: chain},
	}
	v := Attribute(evs, chain, ms(200))
	if v.Stage != StageWire {
		t.Fatalf("stage = %v, want WIRE for a command lost in flight", v.Stage)
	}
	if got, want := v.WireNs, int64(198*time.Millisecond); got != want {
		t.Errorf("wire time = %v, want %v", time.Duration(got), time.Duration(want))
	}
	if v.Painted != 0 {
		t.Errorf("painted = %d, want 0", v.Painted)
	}
}

// TestAttributeUnattributed: no chain, a chain whose input is gone, and a
// chain that encoded nothing all degrade to UNATTRIBUTED.
func TestAttributeUnattributed(t *testing.T) {
	if v := Attribute(nil, 0, ms(100)); v.Stage != StageUnattributed {
		t.Errorf("zero chain: stage = %v", v.Stage)
	}
	// Input overwritten: only downstream events survive.
	evs := []Event{
		{T: ms(5), Kind: EvEncode, Seq: 2, Cause: 3},
		{T: ms(6), Kind: EvTx, Seq: 2, Cause: 3},
	}
	if v := Attribute(evs, 3, ms(200)); v.Stage != StageUnattributed {
		t.Errorf("missing input: stage = %v, want UNATTRIBUTED", v.Stage)
	}
	// Input survives but its encoded commands were truncated out.
	evs = []Event{{T: ms(0), Kind: EvInput, Cause: 3}}
	if v := Attribute(evs, 3, ms(200)); v.Stage != StageUnattributed {
		t.Errorf("missing commands: stage = %v, want UNATTRIBUTED", v.Stage)
	}
}

// TestAttributeTruncatedRing is the satellite regression: a breach whose
// chain head was already overwritten in the live ring must come back
// UNATTRIBUTED from CheckBreach, never misclassified from the partial
// tail. The ring is flooded between the input and the breach check so the
// INPUT (and ENCODE) slots are gone but the breach is still detected.
func TestAttributeTruncatedRing(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	rec := New(obs.DomainWall).Instrument(reg)
	rec.SetThreshold(150 * time.Millisecond)
	l := rec.Session(1)

	l.Input(protocol.TypeKey, 'x')
	l.Encode(1, protocol.TypeBitmap, 100, 64)
	l.Tx(1, protocol.TypeBitmap, 100)
	// Flood the ring: far more events than DefaultRingSize, all under the
	// same chain, overwriting the head of the chain.
	for i := 0; i < DefaultRingSize+64; i++ {
		l.Status(uint32(i), 0)
	}
	br, breached := rec.CheckBreach(1, 400*time.Millisecond)
	if !breached {
		t.Fatal("breach not detected on a truncated ring")
	}
	if br.Verdict.Stage != StageUnattributed {
		t.Fatalf("truncated ring attributed to %v, want UNATTRIBUTED", br.Verdict.Stage)
	}
}

// TestAttributeHost covers the HOST verdict: a chain whose lifetime is
// covered by a recorded GC or CPU-starvation window is blamed on the host
// runtime, not on whichever pipeline stage the stall happened to inflate.
func TestAttributeHost(t *testing.T) {
	const chain = 21
	// The command sat "in the wire" for 180 ms — but the whole interval was
	// a CPU-starvation episode on this host, so WIRE was a victim.
	evs := []Event{
		{T: ms(0), Kind: EvInput, Cause: chain},
		{T: ms(1), Kind: EvEncode, Seq: 5, Cause: chain},
		{T: ms(2), Kind: EvTx, Seq: 5, Cause: chain},
		{T: ms(182), Kind: EvRx, Seq: 5, Cause: chain},
		{T: ms(183), Kind: EvPaint, Seq: 5, Cause: chain},
	}
	wins := []HostWindow{{Start: ms(0), End: ms(185), Kind: "cpu", WorstNs: int64(ms(90))}}
	v := AttributeWithHost(evs, chain, ms(183), wins)
	if v.Stage != StageHost {
		t.Fatalf("stage = %v, want HOST (verdict %+v)", v.Stage, v)
	}
	if v.HostKind != "cpu" {
		t.Errorf("host kind = %q, want cpu", v.HostKind)
	}
	if got, want := v.HostNs, int64(183*time.Millisecond); got != want {
		t.Errorf("host overlap = %v, want %v", time.Duration(got), time.Duration(want))
	}

	// A short GC pause inside a long genuine wire stall stays WIRE — but
	// the overlap is kept as evidence.
	wins = []HostWindow{{Start: ms(10), End: ms(40), Kind: "gc", WorstNs: int64(ms(25))}}
	v = AttributeWithHost(evs, chain, ms(183), wins)
	if v.Stage != StageWire {
		t.Fatalf("stage = %v, want WIRE for a minor pause (verdict %+v)", v.Stage, v)
	}
	if v.HostNs != int64(30*time.Millisecond) || v.HostKind != "gc" {
		t.Errorf("host evidence = %v/%q, want 30ms/gc", time.Duration(v.HostNs), v.HostKind)
	}

	// Windows of both kinds covering the chain report combined evidence;
	// HostNs is the max per-kind overlap (the kinds often flag the same
	// wall-clock interval, so summing them would double-count).
	wins = []HostWindow{
		{Start: ms(0), End: ms(185), Kind: "gc"},
		{Start: ms(0), End: ms(185), Kind: "cpu"},
	}
	v = AttributeWithHost(evs, chain, ms(183), wins)
	if v.Stage != StageHost || v.HostKind != "gc+cpu" {
		t.Errorf("combined evidence: stage=%v kind=%q, want HOST/gc+cpu", v.Stage, v.HostKind)
	}

	// Disjoint windows leave the verdict untouched.
	wins = []HostWindow{{Start: ms(300), End: ms(400), Kind: "gc"}}
	v = AttributeWithHost(evs, chain, ms(183), wins)
	if v.Stage != StageWire || v.HostNs != 0 || v.HostKind != "" {
		t.Errorf("disjoint window polluted verdict %+v", v)
	}
}

// TestCheckBreachHostEvidence wires host evidence into a live recorder and
// asserts the breach path consumes it: the verdict comes back HOST and the
// dump carries the windows for offline reattribution.
func TestCheckBreachHostEvidence(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	rec := New(obs.DomainWall).Instrument(reg)
	rec.SetThreshold(50 * time.Millisecond)
	rec.SetDumpGap(0)
	dir := t.TempDir()
	rec.SetDumpDir(dir)
	l := rec.Session(1)

	l.Input(protocol.TypeKey, 'x')
	l.Encode(9, protocol.TypeBitmap, 100, 64)
	l.Tx(9, protocol.TypeBitmap, 100)
	time.Sleep(20 * time.Millisecond)
	l.Rx(9, protocol.TypeBitmap, 100)
	l.Paint(9, protocol.TypeBitmap)

	// The monitor saw the whole run as one starvation episode.
	rec.SetHostEvidence(func(asOf time.Duration) []HostWindow {
		return []HostWindow{{Start: 0, End: asOf, Kind: "cpu", WorstNs: int64(20 * time.Millisecond)}}
	})
	br, breached := rec.CheckBreach(1, 200*time.Millisecond)
	if !breached {
		t.Fatal("breach not detected")
	}
	if br.Verdict.Stage != StageHost {
		t.Fatalf("stage = %v, want HOST (verdict %+v)", br.Verdict.Stage, br.Verdict)
	}
	if br.Path == "" {
		t.Fatal("no dump written")
	}
	f, err := os.Open(br.Path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.HostWindows) != 1 || d.HostWindows[0].Kind != "cpu" {
		t.Fatalf("dump host windows = %+v, want the cpu window", d.HostWindows)
	}
	if d.Verdict == nil || d.Verdict.Stage != StageHost {
		t.Fatalf("dump verdict = %+v, want HOST", d.Verdict)
	}

	// Unwiring the evidence reverts to pipeline-only attribution.
	rec.SetHostEvidence(nil)
	br, _ = rec.CheckBreach(1, 200*time.Millisecond)
	if br.Verdict.Stage == StageHost {
		t.Error("HOST verdict without wired evidence")
	}
}

// TestBlameTable checks aggregation, shares, and the rendered table.
func TestBlameTable(t *testing.T) {
	var bt BlameTable
	for i := 0; i < 9; i++ {
		bt.AddVerdict(Verdict{Stage: StageWire, WireNs: int64(ms(200)), Loss: true}, int64(ms(220)))
	}
	bt.AddVerdict(Verdict{Stage: StageUnattributed}, int64(ms(300)))
	if bt.Total != 10 || bt.Unattributed != 1 || bt.Loss != 9 {
		t.Fatalf("table totals = %+v", bt)
	}
	if got := bt.Share(StageWire); got != 0.9 {
		t.Errorf("wire share = %v, want 0.9", got)
	}
	var sb strings.Builder
	if err := bt.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"10 breaches", "WIRE", "90.0%", "UNATTRIBUTED"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestVerdictJSONRoundTrip pins the dump wire format: stages serialize by
// name and survive a round trip.
func TestVerdictJSONRoundTrip(t *testing.T) {
	st := StageWire
	b, err := st.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"WIRE"` {
		t.Fatalf("stage JSON = %s", b)
	}
	var back Stage
	if err := back.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if back != StageWire {
		t.Fatalf("round trip = %v", back)
	}
	if _, err := ParseStage("NOPE"); err == nil {
		t.Error("ParseStage accepted garbage")
	}
}
