package flight

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"slim/internal/obs"
	"slim/internal/protocol"
)

func TestRingRecordsAndOrders(t *testing.T) {
	rec := New(obs.DomainWall)
	l := rec.Session(7)
	id := l.Input(protocol.TypeKey, 'x')
	if id == 0 {
		t.Fatal("Input returned zero chain ID")
	}
	l.Op(2)
	l.Encode(41, protocol.TypeBitmap, 58, 128)
	l.Tx(41, protocol.TypeBitmap, 58)
	l.Rx(41, protocol.TypeBitmap, 58)
	l.Decode(41, protocol.TypeBitmap, 0)
	l.Paint(41, protocol.TypeBitmap)

	evs := l.Events(0)
	if len(evs) != 7 {
		t.Fatalf("got %d events, want 7", len(evs))
	}
	wantKinds := []Kind{EvInput, EvOp, EvEncode, EvTx, EvRx, EvDecode, EvPaint}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, ev.Kind, wantKinds[i])
		}
		if ev.Cause != id {
			t.Errorf("event %d cause = %d, want %d (all events inherit the input chain)", i, ev.Cause, id)
		}
		if i > 0 && ev.T < evs[i-1].T {
			t.Errorf("event %d out of order", i)
		}
	}
	if evs[2].Seq != 41 || evs[2].A != 58 || evs[2].B != 128 {
		t.Errorf("encode event payload = %+v", evs[2])
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	rec := New(obs.DomainWall)
	l := rec.Session(1)
	n := len(l.slots) + 100
	for i := 0; i < n; i++ {
		l.Op(int64(i))
	}
	evs := l.Events(0)
	if len(evs) != len(l.slots) {
		t.Fatalf("got %d events after wrap, want %d", len(evs), len(l.slots))
	}
	if got, want := evs[len(evs)-1].A, int64(n-1); got != want {
		t.Errorf("newest event A = %d, want %d", got, want)
	}
	if got, want := evs[0].A, int64(100); got != want {
		t.Errorf("oldest surviving event A = %d, want %d", got, want)
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	rec := New(obs.DomainWall)
	rec.SetEnabled(false)
	l := rec.Session(1)
	l.Input(protocol.TypeKey, 'x')
	l.Encode(1, protocol.TypeFill, 10, 100)
	if evs := l.Events(0); len(evs) != 0 {
		t.Fatalf("disabled recorder stored %d events", len(evs))
	}
	if l.Armed() {
		t.Error("disabled log reports Armed")
	}
	var nilLog *SessionLog
	nilLog.Input(protocol.TypeKey, 'x') // must not panic
	nilLog.Paint(1, protocol.TypeFill)
	if nilLog.Events(0) != nil {
		t.Error("nil log returned events")
	}
}

func TestConcurrentRecordingIsSafe(t *testing.T) {
	rec := New(obs.DomainWall)
	l := rec.Session(1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				l.Encode(uint32(i), protocol.TypeSet, 100, 50)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			l.Events(time.Second)
		}
	}()
	wg.Wait()
	<-done
	if got := len(l.Events(0)); got == 0 {
		t.Fatal("no events survived concurrent recording")
	}
}

func TestClockDomainSeparation(t *testing.T) {
	sim := New(obs.DomainSim)
	l := sim.Session(1)
	l.RecordAt(3*time.Millisecond, Event{Kind: EvLinkTx, A: 1400})
	l.RecordAt(5*time.Millisecond, Event{Kind: EvDrop, A: 700})
	evs := l.Events(0)
	if len(evs) != 2 || evs[0].T != 3*time.Millisecond {
		t.Fatalf("sim events = %+v", evs)
	}
	// Self-stamping on a sim recorder must panic (virtual rings never
	// receive wall time), and vice versa.
	mustPanic(t, func() { l.Input(protocol.TypeKey, 'x') })
	wall := New(obs.DomainWall)
	mustPanic(t, func() { wall.Session(1).RecordAt(time.Millisecond, Event{Kind: EvLinkTx}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestBreachDumpAndRateLimit(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry(obs.DomainWall)
	rec := New(obs.DomainWall).Instrument(reg)
	rec.SetDumpDir(dir)
	rec.SetThreshold(150 * time.Millisecond)

	l := rec.Session(3)
	cause := l.Input(protocol.TypeKey, 'q')
	l.Encode(9, protocol.TypeBitmap, 44, 128)
	l.Paint(9, protocol.TypeBitmap)

	if _, breached := rec.CheckBreach(3, 100*time.Millisecond); breached {
		t.Fatal("sub-threshold latency reported as breach")
	}
	br, breached := rec.CheckBreach(3, 200*time.Millisecond)
	if !breached || br.Path == "" {
		t.Fatalf("breach not dumped: path=%q breached=%v", br.Path, breached)
	}
	path := br.Path
	if rec.BreachCount() != 1 {
		t.Errorf("breach count = %d, want 1", rec.BreachCount())
	}
	snap := reg.Snapshot()
	if snap.Counters["slim_flight_breaches_total"] != 1 {
		t.Errorf("breach counter = %d", snap.Counters["slim_flight_breaches_total"])
	}
	if snap.Gauges["slim_flight_last_breach_unix_ms"] == 0 {
		t.Error("last-breach gauge not set")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReadDump(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if d.Session != 3 || d.LatencyNs != int64(200*time.Millisecond) {
		t.Errorf("dump header = %+v", d)
	}
	// The causal chain survives the round trip.
	var sawInput, sawPaint bool
	for _, ev := range d.Events {
		if ev.Kind == EvInput && ev.Cause == cause {
			sawInput = true
		}
		if ev.Kind == EvPaint && ev.Seq == 9 && ev.Cause == cause {
			sawPaint = true
		}
	}
	if !sawInput || !sawPaint {
		t.Errorf("dump lost the causal chain: input=%v paint=%v", sawInput, sawPaint)
	}

	// A second breach within the gap is counted but not dumped.
	if br2, breached := rec.CheckBreach(3, 300*time.Millisecond); !breached || br2.Path != "" {
		t.Errorf("rate limit failed: path=%q breached=%v", br2.Path, breached)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-sess3-*.json"))
	if len(files) != 1 {
		t.Errorf("dump files = %d, want 1 (rate limited)", len(files))
	}
	if rec.BreachCount() != 2 {
		t.Errorf("breach count = %d, want 2", rec.BreachCount())
	}
}

func TestDropEvictsSession(t *testing.T) {
	rec := New(obs.DomainWall)
	rec.Session(5).Op(1)
	if len(rec.Sessions()) != 1 {
		t.Fatal("session not registered")
	}
	rec.Drop(5)
	if len(rec.Sessions()) != 0 {
		t.Error("session survived Drop")
	}
	if evs := rec.Events(5, 0); evs != nil {
		t.Error("dropped session still queryable")
	}
}

func TestPerfettoExportAndHandler(t *testing.T) {
	rec := New(obs.DomainWall)
	l := rec.Session(2)
	l.Input(protocol.TypeKey, 'a')
	l.Encode(1, protocol.TypeFill, 20, 1000)
	l.Tx(1, protocol.TypeFill, 20)
	l.Paint(1, protocol.TypeFill)

	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf, 2, 0); err != nil {
		t.Fatal(err)
	}
	assertPerfetto(t, buf.Bytes(), 2)

	// The HTTP handler speaks the same format.
	h := rec.TraceHandler()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?session=2&last=5s", nil))
	if rr.Code != 200 {
		t.Fatalf("handler status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("content type %q", ct)
	}
	assertPerfetto(t, rr.Body.Bytes(), 2)

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?last=bogus", nil))
	if rr.Code != 400 {
		t.Errorf("bad duration: status %d, want 400", rr.Code)
	}
}

// assertPerfetto checks the bytes parse as trace-event JSON with events
// for the session, input flow arrows included.
func assertPerfetto(t *testing.T, raw []byte, session uint32) {
	t.Helper()
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  uint32  `json:"pid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("not valid trace-event JSON: %v", err)
	}
	var slices, flows int
	for _, ev := range f.TraceEvents {
		if ev.PID != session && ev.PID != 0 {
			t.Errorf("event pid %d, want %d", ev.PID, session)
		}
		switch ev.Ph {
		case "X":
			slices++
		case "s", "f":
			flows++
		}
	}
	if slices < 4 {
		t.Errorf("slices = %d, want >=4", slices)
	}
	if flows < 2 {
		t.Errorf("flow events = %d, want >=2 (input→paint arrows)", flows)
	}
}

func TestDisabledRecordAllocatesNothing(t *testing.T) {
	rec := New(obs.DomainWall)
	rec.SetEnabled(false)
	l := rec.Session(1)
	if n := testing.AllocsPerRun(100, func() {
		l.Encode(1, protocol.TypeSet, 100, 50)
	}); n != 0 {
		t.Errorf("disabled record allocates %.1f objects", n)
	}
	rec.SetEnabled(true)
	if n := testing.AllocsPerRun(100, func() {
		l.Encode(1, protocol.TypeSet, 100, 50)
	}); n != 0 {
		t.Errorf("enabled record allocates %.1f objects", n)
	}
}

// The ISSUE's overhead claim, made checkable: recording disabled must be
// within noise of not calling the recorder at all, and enabled must stay
// in the tens-of-nanoseconds class. Run with `make bench-guard` (smoke)
// or `go test -bench . ./internal/obs/flight`.

func BenchmarkRecordBaseline(b *testing.B) {
	// The call-site shape with no recorder wired: a nil log.
	var l *SessionLog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Encode(uint32(i), protocol.TypeSet, 100, 50)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	rec := New(obs.DomainWall)
	rec.SetEnabled(false)
	l := rec.Session(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Encode(uint32(i), protocol.TypeSet, 100, 50)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	rec := New(obs.DomainWall)
	l := rec.Session(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Encode(uint32(i), protocol.TypeSet, 100, 50)
	}
}

func BenchmarkRecordEnabledParallel(b *testing.B) {
	rec := New(obs.DomainWall)
	l := rec.Session(1)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Encode(7, protocol.TypeSet, 100, 50)
		}
	})
}
