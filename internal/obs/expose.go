package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// Metric names may carry a Prometheus label suffix: "name{k=\"v\"}".
// splitName separates the base name from the label body (no braces).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// promName reassembles a metric name with extra labels appended.
func promName(base, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return base
	}
	return base + "{" + all + "}"
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4). Histograms render as cumulative _bucket series
// with le labels plus _sum and _count, so any Prometheus-compatible
// scraper can compute quantiles its own way.
func (r *Registry) WritePrometheus(w io.Writer) {
	snap := r.Snapshot()
	typed := make(map[string]bool) // base names already given a # TYPE line

	for _, name := range sortedKeys(snap.Counters) {
		base, labels := splitName(name)
		if !typed[base] {
			fmt.Fprintf(w, "# TYPE %s counter\n", base)
			typed[base] = true
		}
		fmt.Fprintf(w, "%s %d\n", promName(base, labels, ""), snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		base, labels := splitName(name)
		if !typed[base] {
			fmt.Fprintf(w, "# TYPE %s gauge\n", base)
			typed[base] = true
		}
		fmt.Fprintf(w, "%s %d\n", promName(base, labels, ""), snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		base, labels := splitName(name)
		if !typed[base] {
			fmt.Fprintf(w, "# TYPE %s histogram\n", base)
			typed[base] = true
		}
		var cum int64
		for i, n := range h.Buckets {
			cum += n
			le := "+Inf"
			if ub := BoundarySeconds(i); !math.IsInf(ub, 1) {
				le = fmt.Sprintf("%g", ub)
			}
			fmt.Fprintf(w, "%s %d\n", promName(base+"_bucket", labels, `le="`+le+`"`), cum)
		}
		fmt.Fprintf(w, "%s %g\n", promName(base+"_sum", labels, ""), h.SumSeconds)
		fmt.Fprintf(w, "%s %d\n", promName(base+"_count", labels, ""), cum)
	}
}

// WriteJSON renders the registry snapshot as a single JSON object — the
// expvar-style view served at /debug/vars and consumed by cmd/slimstat.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// DebugMux builds the slimd debug endpoint over the given registries
// (conventionally Default and Sim):
//
//	/metrics       Prometheus text, all registries concatenated
//	/debug/vars    JSON snapshots keyed by clock domain
//	/debug/pprof/  the standard net/http/pprof profiles
//
// Mount it on any address with http.ListenAndServe, or pass it to
// ServeDebug for the canonical background server.
func DebugMux(regs ...*Registry) *http.ServeMux {
	if len(regs) == 0 {
		regs = []*Registry{Default, Sim}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			r.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		domains := make(map[string]Snapshot, len(regs))
		for _, r := range regs {
			domains[string(r.Domain())] = r.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(domains)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug endpoint on addr in a background goroutine
// and returns the server (Close to stop) once the listener is bound, so
// callers learn about bad addresses immediately.
func ServeDebug(addr string, regs ...*Registry) (*http.Server, error) {
	srv := &http.Server{Addr: addr, Handler: DebugMux(regs...)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

// SortedHistogramNames lists a snapshot's histogram names in stable order
// (for terminal renderers like slimstat).
func (s Snapshot) SortedHistogramNames() []string { return sortedKeys(s.Histograms) }

// SortedCounterNames lists a snapshot's counter names in stable order.
func (s Snapshot) SortedCounterNames() []string { return sortedKeys(s.Counters) }

// CounterSum adds up every counter whose base name matches base, across
// label variants — e.g. the total commands over all per-type counters.
func (s Snapshot) CounterSum(base string) int64 {
	var n int64
	for name, v := range s.Counters {
		if b, _ := splitName(name); b == base {
			n += v
		}
	}
	return n
}

// HistogramMerge folds every histogram whose base name matches base into
// one snapshot (summing buckets, counts, and sums, recomputing
// percentiles) — e.g. input-to-paint over all sessions.
func (s Snapshot) HistogramMerge(base string) HistogramSnapshot {
	var out HistogramSnapshot
	names := make([]string, 0, 4)
	for name := range s.Histograms {
		if b, _ := splitName(name); b == base {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var total int64
	for _, name := range names {
		h := s.Histograms[name]
		out.Count += h.Count
		out.SumSeconds += h.SumSeconds
		for i, n := range h.Buckets {
			out.Buckets[i] += n
			total += n
		}
	}
	out.P50 = quantileFromBuckets(out.Buckets, total, 0.50)
	out.P95 = quantileFromBuckets(out.Buckets, total, 0.95)
	out.P99 = quantileFromBuckets(out.Buckets, total, 0.99)
	return out
}
