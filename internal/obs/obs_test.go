package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry(DomainWall)
	c1 := r.Counter("slim_test_total")
	c2 := r.Counter("slim_test_total")
	if c1 != c2 {
		t.Error("same counter name resolved to two instances")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same gauge name resolved to two instances")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("same histogram name resolved to two instances")
	}
}

// TestRegistryConcurrentRegistration races get-or-create from many
// goroutines; every caller must land on the one shared metric.
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry(DomainWall)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Counter("shared").Inc()
			r.Histogram("hist").Observe(time.Millisecond)
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != n {
		t.Errorf("shared counter = %d, want %d", got, n)
	}
	if got := r.Histogram("hist").Count(); got != n {
		t.Errorf("shared histogram count = %d, want %d", got, n)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	r := NewRegistry(DomainSim)
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_seconds")
	c.Add(7)
	g.Set(-3)
	h.Observe(time.Millisecond)

	s := r.Snapshot()
	if s.Domain != DomainSim {
		t.Errorf("snapshot domain = %q, want sim", s.Domain)
	}
	if s.Counters["c_total"] != 7 || s.Gauges["g"] != -3 || s.Histograms["h_seconds"].Count != 1 {
		t.Errorf("snapshot values wrong: %+v", s)
	}

	r.Reset()
	s = r.Snapshot()
	if s.Counters["c_total"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h_seconds"].Count != 0 {
		t.Errorf("post-reset snapshot not zeroed: %+v", s)
	}
	// Identities survive a reset: the old pointers still feed the registry.
	c.Inc()
	if got := r.Snapshot().Counters["c_total"]; got != 1 {
		t.Errorf("counter after reset+inc = %d, want 1 (identity lost)", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	c.Inc()
	c.Add(5)
	g.Set(9)
	g.Add(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
}

func TestMustSim(t *testing.T) {
	sim := NewRegistry(DomainSim)
	if MustSim(sim) != sim {
		t.Error("MustSim did not return the sim registry")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSim accepted a wall-clock registry")
		}
	}()
	MustSim(NewRegistry(DomainWall))
}

func TestSpan(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	span := obsStartSpanFor(a)
	span.Attach(b)
	span.End()
	if a.Count() != 1 || b.Count() != 1 {
		t.Errorf("span recorded into %d/%d histograms, want 1/1", a.Count(), b.Count())
	}

	// The zero span is inert: Attach and End are no-ops.
	var inert Span
	if inert.Active() {
		t.Error("zero span reports active")
	}
	inert.Attach(a)
	inert.End()
	if a.Count() != 1 {
		t.Error("inert span recorded an observation")
	}
}

// obsStartSpanFor exists to keep the span under test in a helper frame,
// mirroring how server.Handle arms spans in one scope and ends in another.
func obsStartSpanFor(h *Histogram) Span {
	s := StartSpan(h)
	if !s.Active() {
		panic("StartSpan returned inert span")
	}
	return s
}

func TestRegistryRemove(t *testing.T) {
	r := NewRegistry(DomainWall)
	c := r.Counter("gone_total")
	r.Gauge(`labeled{session="u"}`)
	r.Histogram(`labeled{session="u"}`)
	c.Inc()

	r.Remove("gone_total")
	r.Remove(`labeled{session="u"}`)

	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("metrics survived Remove: %+v", snap)
	}
	// Held pointers keep working; re-registering yields a fresh identity.
	c.Inc()
	if r.Counter("gone_total").Value() != 0 {
		t.Error("re-registered counter inherited the removed identity")
	}
}
