package video

import (
	"math"
	"time"

	"slim/internal/protocol"
	"slim/internal/stats"
)

// QuakeSource models the id Software Quake port of §7.3. The game engine
// renders 8-bit indexed-color frames; a translation layer converts them to
// YUV via a lookup table computed from the RGB colormap, and the frames go
// to the console as 5 bpp CSCS commands.
//
// The synthetic engine renders a textured-floor corridor fly-through —
// cheap, deterministic, and with the dithered, palette-quantized pixel
// statistics of the real renderer.
type QuakeSource struct {
	W, H    int
	Palette [256]protocol.Pixel
	frame   int
	rng     *stats.RNG
	cost    time.Duration
	indexed []byte
}

// NewQuake returns a Quake source at the given resolution (the paper uses
// 640x480, 480x360, and 320x240).
func NewQuake(w, h int, seed uint64) *QuakeSource {
	q := &QuakeSource{W: w, H: h, rng: stats.NewRNG(seed), indexed: make([]byte, w*h)}
	// Quake-ish palette: dark browns, grays, and lava highlights.
	for i := 0; i < 256; i++ {
		switch {
		case i < 128: // browns
			q.Palette[i] = protocol.RGB(uint8(i), uint8(i*3/4), uint8(i/2))
		case i < 192: // grays
			v := uint8((i - 128) * 2)
			q.Palette[i] = protocol.RGB(v, v, v)
		default: // fire
			q.Palette[i] = protocol.RGB(uint8(128+(i-192)*2), uint8((i-192)*2), 16)
		}
	}
	return q
}

// Geometry implements Source.
func (q *QuakeSource) Geometry() (int, int) { return q.W, q.H }

// FrameCost implements Source: engine render time plus the YUV translation
// cost, both scaled from the paper's 640x480 numbers by pixel count.
func (q *QuakeSource) FrameCost() time.Duration { return q.cost }

// RenderIndexed produces the next raw 8-bit frame (the engine's output,
// before translation). The returned slice is reused across calls.
func (q *QuakeSource) RenderIndexed() []byte {
	t := float64(q.frame)
	cx, cy := float64(q.W)/2, float64(q.H)/2
	for y := 0; y < q.H; y++ {
		for x := 0; x < q.W; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			var c int
			if math.Abs(dy) < 2 {
				c = 160 // horizon line
			} else {
				// Perspective floor/ceiling texture: distance-scaled
				// checker with a forward fly-through.
				z := cy / math.Abs(dy)
				u := dx*z/64 + t/7
				v := z + t/9
				check := (int(math.Floor(u)) + int(math.Floor(v))) & 1
				shade := int(96 / z)
				if shade > 100 {
					shade = 100
				}
				c = 20 + shade + check*24
				if dy < 0 {
					c += 128 // ceiling uses the gray band
					if c > 191 {
						c = 191
					}
				}
			}
			// Lava glow flicker in a corner panel.
			if x < q.W/8 && y > q.H*7/8 && q.rng.Float64() < 0.4 {
				c = 192 + q.rng.Intn(64)
			}
			q.indexed[y*q.W+x] = byte(c)
		}
	}
	q.frame++
	px := float64(q.W * q.H)
	scale := px / (640 * 480)
	render := stats.NewRNG(uint64(q.frame)).Range(float64(QuakeRenderCostLo), float64(QuakeRenderCostHi))
	q.cost = time.Duration((render + float64(QuakeTranslateCost640)) * scale)
	return q.indexed
}

// Next implements Source: render a frame and translate it through the
// palette lookup table into RGB (the console's CSCS encode then converts
// to YUV — the same double conversion path the paper's translation layer
// took, with the LUT fused server side).
func (q *QuakeSource) Next() Frame {
	idx := q.RenderIndexed()
	f := Frame{W: q.W, H: q.H, Pixels: make([]protocol.Pixel, len(idx))}
	for i, c := range idx {
		f.Pixels[i] = q.Palette[c]
	}
	return f
}

// TransmitCost models the server-side cost of pushing one frame's CSCS
// data to the network, scaled from the paper's 13 ms at 640x480.
func (q *QuakeSource) TransmitCost() time.Duration {
	scale := float64(q.W*q.H) / (640 * 480)
	return time.Duration(float64(QuakeTransmitCost640) * scale)
}
