package video

import (
	"testing"
	"time"

	"slim/internal/core"
	"slim/internal/protocol"
)

func TestAppTicksAtRate(t *testing.T) {
	app := NewApp(NewQuake(64, 48, 1), protocol.Rect{W: 64, H: 48}, protocol.CSCS5, 10)
	frames := 0
	for i := 0; i <= 100; i++ { // one second in 10ms steps
		ops := app.Tick(time.Duration(i) * 10 * time.Millisecond)
		frames += len(ops)
		for _, op := range ops {
			if _, ok := op.(core.VideoOp); !ok {
				t.Fatalf("tick produced %T", op)
			}
		}
	}
	if frames < 9 || frames > 12 {
		t.Errorf("frames in 1s at 10fps = %d", frames)
	}
	if app.Frames() != frames {
		t.Errorf("Frames() = %d, rendered %d", app.Frames(), frames)
	}
}

func TestAppPauseToggle(t *testing.T) {
	app := NewApp(NewQuake(32, 24, 2), protocol.Rect{W: 32, H: 24}, protocol.CSCS5, 30)
	if ops := app.Tick(time.Second); len(ops) != 1 {
		t.Fatal("no frame while playing")
	}
	app.HandleKey(protocol.KeyEvent{Code: ' ', Down: true})
	if ops := app.Tick(2 * time.Second); len(ops) != 0 {
		t.Error("paused app rendered")
	}
	// Key release and other keys do not toggle.
	app.HandleKey(protocol.KeyEvent{Code: ' ', Down: false})
	app.HandleKey(protocol.KeyEvent{Code: 'x', Down: true})
	if ops := app.Tick(3 * time.Second); len(ops) != 0 {
		t.Error("release/other key resumed playback")
	}
	app.HandleKey(protocol.KeyEvent{Code: ' ', Down: true})
	if ops := app.Tick(4 * time.Second); len(ops) != 1 {
		t.Error("space did not resume")
	}
	if ops := app.HandlePointer(protocol.PointerEvent{X: 1, Y: 1, Buttons: 1}); ops != nil {
		t.Error("pointer rendered")
	}
}

func TestAppResyncAfterStall(t *testing.T) {
	app := NewApp(NewQuake(32, 24, 2), protocol.Rect{W: 32, H: 24}, protocol.CSCS5, 25)
	app.Tick(0)
	// A long stall must not cause a burst of stale frames.
	burst := 0
	for i := 0; i < 5; i++ {
		burst += len(app.Tick(10*time.Second + time.Duration(i)*time.Millisecond))
	}
	if burst > 2 {
		t.Errorf("stall burst = %d frames", burst)
	}
}

func TestAppDefaultFPS(t *testing.T) {
	app := NewApp(NewQuake(16, 16, 1), protocol.Rect{W: 16, H: 16}, protocol.CSCS5, 0)
	if app.interval != time.Second/24 {
		t.Errorf("default interval = %v", app.interval)
	}
}
