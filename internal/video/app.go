package video

import (
	"sync"
	"time"

	"slim/internal/core"
	"slim/internal/protocol"
)

// App is a session application that plays a video source — the shape of
// the paper's ShowMeTV port (§7.1): frames are converted and pushed to the
// console with CSCS on the application's own clock, not in response to
// input. It implements both the server's Application interface and its
// Ticker extension.
type App struct {
	mu       sync.Mutex
	src      Source
	dst      protocol.Rect
	format   protocol.CSCSFormat
	interval time.Duration
	next     time.Duration
	playing  bool
	frames   int
}

// NewApp returns a player rendering src into dst at fps via the given
// CSCS format. Playback starts immediately.
func NewApp(src Source, dst protocol.Rect, format protocol.CSCSFormat, fps float64) *App {
	if fps <= 0 {
		fps = 24
	}
	return &App{
		src:      src,
		dst:      dst,
		format:   format,
		interval: time.Duration(float64(time.Second) / fps),
		playing:  true,
	}
}

// HandleKey implements the application interface: space toggles playback,
// any other key is ignored (the player owns the screen).
func (a *App) HandleKey(ev protocol.KeyEvent) []core.Op {
	if !ev.Down || ev.Code != ' ' {
		return nil
	}
	a.mu.Lock()
	a.playing = !a.playing
	a.mu.Unlock()
	return nil
}

// HandlePointer implements the application interface.
func (a *App) HandlePointer(ev protocol.PointerEvent) []core.Op { return nil }

// Tick renders the next frame when due.
func (a *App) Tick(now time.Duration) []core.Op {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.playing || now < a.next {
		return nil
	}
	if a.next == 0 {
		a.next = now
	}
	a.next += a.interval
	// If we fell far behind (server stall), resynchronize rather than
	// bursting stale frames.
	if now-a.next > 4*a.interval {
		a.next = now + a.interval
	}
	w, h := a.src.Geometry()
	frame := a.src.Next()
	a.frames++
	return []core.Op{core.VideoOp{
		Src:    protocol.Rect{W: w, H: h},
		Dst:    a.dst,
		Format: a.format,
		Pixels: frame.Pixels,
	}}
}

// Frames reports how many frames have been rendered.
func (a *App) Frames() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.frames
}
