// Package video implements the multimedia substrate of §7: synthetic
// stand-ins for the paper's MPEG-II player, live NTSC video, and Quake,
// plus the streaming pipeline that carries their frames to a console with
// the CSCS command.
//
// The real applications are unavailable (and their decode costs belong to
// 1999 hardware anyway), so each source pairs synthetic frame content with
// a *server cost model* calibrated to the paper: MPEG-II decode consumes an
// entire CPU at ~20 Hz, NTSC JPEG decompression at 16–20 Hz depending on
// content, and Quake pays ~30 ms/frame for YUV translation plus ~13 ms for
// transmission at 640x480. The experiments then ask the same question the
// paper did: given those costs, the console's protocol processing limits,
// and the fabric, what frame rate survives end to end?
package video

import (
	"time"

	"slim/internal/protocol"
	"slim/internal/stats"
)

// Frame is one RGB video frame.
type Frame struct {
	W, H   int
	Pixels []protocol.Pixel
}

// Source produces frames and models their per-frame server-side cost
// (decode, capture, or game rendering — everything before SLIM encoding).
type Source interface {
	// Next returns the next frame.
	Next() Frame
	// FrameCost reports the modelled server CPU time consumed producing
	// the most recent frame.
	FrameCost() time.Duration
	// Geometry reports the source resolution.
	Geometry() (w, h int)
}

// Reference server-cost constants, calibrated to §7 (times are for one
// 336 MHz UltraSPARC-II).
const (
	// MPEG2DecodeCost is per 720x480 frame: disk I/O plus MPEG-II
	// decompression "nearly consumes an entire CPU" at 20 Hz.
	MPEG2DecodeCost = 48 * time.Millisecond
	// NTSCDecodeCostLo/Hi bound per-field JPEG decompression (16–20 Hz,
	// "depending on characteristics of the video").
	NTSCDecodeCostLo = 50 * time.Millisecond
	NTSCDecodeCostHi = 62 * time.Millisecond
	// QuakeTranslateCost640 is the 8-bit→YUV lookup translation at
	// 640x480 ("roughly 30ms/frame"); it scales linearly with pixels.
	QuakeTranslateCost640 = 30 * time.Millisecond
	// QuakeTransmitCost640 is the transmission cost at 640x480
	// ("13ms/frame"); also linear in bytes sent.
	QuakeTransmitCost640 = 13 * time.Millisecond
	// QuakeRenderCostLo/Hi bound the engine's own software rendering per
	// 640x480 frame, varying with scene complexity.
	QuakeRenderCostLo = 4 * time.Millisecond
	QuakeRenderCostHi = 11 * time.Millisecond
)

// mpeg2Source synthesizes a 720x480 movie: a smoothly panning gradient
// scene with a moving high-contrast subject, roughly the pixel statistics
// of natural video.
type mpeg2Source struct {
	w, h  int
	frame int
	rng   *stats.RNG
	cost  time.Duration
}

// NewMPEG2 returns the stored-video source of §7.1 (720x480).
func NewMPEG2(seed uint64) Source {
	return &mpeg2Source{w: 720, h: 480, rng: stats.NewRNG(seed)}
}

func (s *mpeg2Source) Geometry() (int, int) { return s.w, s.h }

func (s *mpeg2Source) FrameCost() time.Duration { return s.cost }

func (s *mpeg2Source) Next() Frame {
	f := Frame{W: s.w, H: s.h, Pixels: make([]protocol.Pixel, s.w*s.h)}
	t := s.frame
	// Panning background plus a moving bright blob.
	bx := (t * 7) % s.w
	by := (t * 3) % s.h
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			r := uint8((x + t*2) * 255 / (s.w + 120))
			g := uint8((y + t) * 255 / (s.h + 60))
			b := uint8(128 + 64*((x>>5+y>>5+t>>3)&1))
			dx, dy := x-bx, y-by
			if dx*dx+dy*dy < 40*40 {
				r, g, b = 250, 240, 200
			}
			f.Pixels[y*s.w+x] = protocol.RGB(r, g, b)
		}
	}
	s.frame++
	// Mild content-dependent cost jitter.
	s.cost = MPEG2DecodeCost + time.Duration(s.rng.Range(-2e6, 2e6))
	return f
}

// ntscSource synthesizes interlaced capture fields: 640x240, scaled to
// 640x480 at the console (§7.2).
type ntscSource struct {
	w, h  int
	frame int
	rng   *stats.RNG
	cost  time.Duration
}

// NewNTSC returns the live-video source of §7.2 (640x240 fields).
func NewNTSC(seed uint64) Source {
	return &ntscSource{w: 640, h: 240, rng: stats.NewRNG(seed)}
}

func (s *ntscSource) Geometry() (int, int) { return s.w, s.h }

func (s *ntscSource) FrameCost() time.Duration { return s.cost }

func (s *ntscSource) Next() Frame {
	f := Frame{W: s.w, H: s.h, Pixels: make([]protocol.Pixel, s.w*s.h)}
	t := s.frame
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			// Camera noise over a slowly changing scene.
			base := uint8(96 + 32*((x>>6+y>>4+t>>2)&3))
			n := uint8(s.rng.Intn(24))
			f.Pixels[y*s.w+x] = protocol.RGB(base+n, base, base-n/2)
		}
	}
	s.frame++
	// JPEG decompression cost varies with content (16–20 Hz).
	s.cost = NTSCDecodeCostLo + time.Duration(s.rng.Range(0, float64(NTSCDecodeCostHi-NTSCDecodeCostLo)))
	return f
}
