package video

import (
	"fmt"
	"time"

	"slim/internal/core"
	"slim/internal/fb"
	"slim/internal/netsim"
	"slim/internal/protocol"
)

// Pipeline describes one multimedia stream from server to console and
// answers the paper's question: where is the bottleneck, and what frame
// rate gets through? (§7: "it turns out that server performance is the
// primary bottleneck.")
type Pipeline struct {
	// SrcW, SrcH is the transmitted resolution; DstW, DstH where it lands
	// (console scales if they differ).
	SrcW, SrcH, DstW, DstH int
	// Format is the CSCS bit depth.
	Format protocol.CSCSFormat
	// ServerPerFrame is the server CPU time per frame (decode/render/
	// translate/transmit).
	ServerPerFrame time.Duration
	// Instances is the number of parallel streams (the paper simulates
	// 4-way parallelism with four half-size players).
	Instances int
	// CPUs bounds total server parallelism.
	CPUs int
	// LinkBps is the fabric capacity to the console.
	LinkBps float64
	// GrantedBps, when positive, caps the stream at the console's §7
	// bandwidth grant (the sorted-grant allocator's output); the video
	// library throttles its frame rate to fit the grant.
	GrantedBps float64
	// Console is the desktop cost model; nil disables the console bound.
	Console *core.CostModel
	// ConsoleVideoEfficiency models the overlap of network DMA, CPU, and
	// the graphics controller's YUV hardware on sustained streams. Table 5
	// costs are measured per isolated command; during steady-state video
	// the Sun Ray pipelines them. Calibrated so the paper's console-bound
	// configurations (4x320x240) land in their published ranges.
	ConsoleVideoEfficiency float64
	// TargetHz caps the rate (media frame rate: 30 for NTSC/MPEG clips).
	TargetHz float64
}

// Report is the steady-state analysis of a pipeline.
type Report struct {
	ServerHz   float64 // rate the server CPUs can produce (all instances)
	ConsoleHz  float64 // rate the console can decode
	LinkHz     float64 // rate the fabric can carry
	AchievedHz float64 // min of the above and TargetHz
	Mbps       float64 // wire bandwidth at the achieved rate
	Bottleneck string  // "server", "console", "link", or "source"
}

// FrameWireBytes reports the on-the-wire size of one encoded frame,
// including datagram and frame overheads for MTU-sized CSCS strips.
func (p *Pipeline) FrameWireBytes() int {
	payload := p.Format.PayloadLen(p.SrcW, p.SrcH)
	budget := core.DefaultMTU - 17
	strips := (payload + budget - 1) / budget
	perStrip := protocol.HeaderSize + 17 + netsim.FrameOverhead
	return payload + strips*perStrip
}

// Analyze computes the steady-state report.
func (p *Pipeline) Analyze() Report {
	if p.Instances <= 0 {
		p.Instances = 1
	}
	if p.CPUs <= 0 {
		p.CPUs = p.Instances
	}
	eff := p.ConsoleVideoEfficiency
	if eff <= 0 {
		eff = 1
	}
	var r Report

	// Server: each instance is single threaded, so an instance runs at
	// 1/ServerPerFrame; total is bounded by available CPUs.
	perInstance := 1.0 / p.ServerPerFrame.Seconds()
	parallel := p.Instances
	if parallel > p.CPUs {
		parallel = p.CPUs
	}
	r.ServerHz = perInstance * float64(parallel)

	// Console: CSCS decode cost over all destination pixels per frame-set.
	r.ConsoleHz = 1e18
	if p.Console != nil {
		perPixel := p.Console.CSCSPerPixel[p.Format] / eff
		payload := p.Format.PayloadLen(p.SrcW, p.SrcH)
		budget := core.DefaultMTU - 17
		strips := (payload + budget - 1) / budget
		nsPerFrame := p.Console.Startup[protocol.TypeCSCS]*float64(strips) +
			perPixel*float64(p.DstW*p.DstH)
		r.ConsoleHz = 1e9 / (nsPerFrame * float64(p.Instances))
	}

	// Link: wire bytes per frame-set, bounded by capacity and by the
	// console's bandwidth grant when one is in force.
	r.LinkHz = 1e18
	limit := p.LinkBps
	if p.GrantedBps > 0 && (limit <= 0 || p.GrantedBps < limit) {
		limit = p.GrantedBps
	}
	if limit > 0 {
		bitsPerSet := float64(p.FrameWireBytes()*8) * float64(p.Instances)
		r.LinkHz = limit / bitsPerSet
	}

	r.AchievedHz = r.ServerHz
	r.Bottleneck = "server"
	if r.ConsoleHz < r.AchievedHz {
		r.AchievedHz = r.ConsoleHz
		r.Bottleneck = "console"
	}
	if r.LinkHz < r.AchievedHz {
		r.AchievedHz = r.LinkHz
		r.Bottleneck = "link"
	}
	if p.TargetHz > 0 && p.TargetHz < r.AchievedHz {
		r.AchievedHz = p.TargetHz
		r.Bottleneck = "source"
	}
	r.Mbps = r.AchievedHz * float64(p.FrameWireBytes()*8) * float64(p.Instances) / 1e6
	return r
}

func (r Report) String() string {
	return fmt.Sprintf("achieved %.1f Hz (%.1f Mbps, %s-bound; server %.1f, console %.1f, link %.1f)",
		r.AchievedHz, r.Mbps, r.Bottleneck, r.ServerHz, r.ConsoleHz, r.LinkHz)
}

// Stream actually pushes n frames from a source through a SLIM encoder
// into a console frame buffer, returning the wall-clock encode+decode rate
// of this host and the wire bytes moved. Used by the examples and tests to
// prove the data path end to end (the Reports above are the 1999 hardware
// model; this is the real code running).
func Stream(src Source, enc *core.Encoder, dst *fb.Framebuffer, dstRect protocol.Rect, format protocol.CSCSFormat, n int) (hostHz float64, wireBytes int64, err error) {
	w, h := src.Geometry()
	start := time.Now()
	for i := 0; i < n; i++ {
		frame := src.Next()
		op := core.VideoOp{
			Src:    protocol.Rect{W: w, H: h},
			Dst:    dstRect,
			Format: format,
			Pixels: frame.Pixels,
		}
		dgs, err := enc.Encode(op)
		if err != nil {
			return 0, 0, err
		}
		for _, d := range dgs {
			wireBytes += int64(len(d.Wire))
			_, msg, _, err := protocol.Decode(d.Wire)
			if err != nil {
				return 0, 0, err
			}
			if err := dst.Apply(msg); err != nil {
				return 0, 0, err
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(n) / elapsed, wireBytes, nil
}

// DefaultConsoleVideoEfficiency is the calibrated overlap factor; see
// Pipeline.ConsoleVideoEfficiency.
const DefaultConsoleVideoEfficiency = 1.8
