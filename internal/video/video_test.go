package video

import (
	"testing"
	"time"

	"slim/internal/core"
	"slim/internal/fb"
	"slim/internal/netsim"
	"slim/internal/protocol"
)

func TestMPEG2Source(t *testing.T) {
	src := NewMPEG2(1)
	w, h := src.Geometry()
	if w != 720 || h != 480 {
		t.Fatalf("geometry = %dx%d", w, h)
	}
	f := src.Next()
	if f.W != w || f.H != h || len(f.Pixels) != w*h {
		t.Fatal("frame geometry wrong")
	}
	cost := src.FrameCost()
	if cost < 40*time.Millisecond || cost > 56*time.Millisecond {
		t.Errorf("decode cost = %v", cost)
	}
	// Frames animate.
	g := src.Next()
	same := true
	for i := range f.Pixels {
		if f.Pixels[i] != g.Pixels[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("consecutive frames identical")
	}
}

func TestNTSCSource(t *testing.T) {
	src := NewNTSC(2)
	w, h := src.Geometry()
	if w != 640 || h != 240 {
		t.Fatalf("geometry = %dx%d", w, h)
	}
	src.Next()
	cost := src.FrameCost()
	if cost < NTSCDecodeCostLo || cost > NTSCDecodeCostHi {
		t.Errorf("decode cost = %v outside [%v, %v]", cost, NTSCDecodeCostLo, NTSCDecodeCostHi)
	}
}

func TestQuakeSource(t *testing.T) {
	q := NewQuake(640, 480, 3)
	idx := q.RenderIndexed()
	if len(idx) != 640*480 {
		t.Fatalf("indexed frame = %d", len(idx))
	}
	// Cost at 640x480: render (4–11ms) + translate (30ms).
	cost := q.FrameCost()
	if cost < 30*time.Millisecond || cost > 45*time.Millisecond {
		t.Errorf("frame cost = %v", cost)
	}
	if tx := q.TransmitCost(); tx != QuakeTransmitCost640 {
		t.Errorf("transmit cost = %v", tx)
	}
	// Quarter-res costs scale by pixel count.
	q2 := NewQuake(320, 240, 3)
	q2.RenderIndexed()
	if q2.FrameCost() >= cost/3 {
		t.Errorf("quarter-res cost %v not ~4x cheaper than %v", q2.FrameCost(), cost)
	}
	// Frames use a healthy slice of the palette.
	distinct := map[byte]bool{}
	for _, c := range idx {
		distinct[c] = true
	}
	if len(distinct) < 16 {
		t.Errorf("only %d distinct palette entries", len(distinct))
	}
	f := q.Next()
	if len(f.Pixels) != 640*480 {
		t.Error("translated frame wrong size")
	}
}

func TestPipelineServerBound(t *testing.T) {
	p := Pipeline{
		SrcW: 720, SrcH: 480, DstW: 720, DstH: 480,
		Format:         protocol.CSCS6,
		ServerPerFrame: 48 * time.Millisecond,
		Instances:      1, CPUs: 8,
		LinkBps: netsim.Rate100Mbps,
		Console: core.SunRay1Costs(), ConsoleVideoEfficiency: DefaultConsoleVideoEfficiency,
		TargetHz: 30,
	}
	r := p.Analyze()
	if r.Bottleneck != "server" {
		t.Errorf("bottleneck = %s", r.Bottleneck)
	}
	if r.AchievedHz < 18 || r.AchievedHz > 23 {
		t.Errorf("achieved = %f Hz, want ~20 (paper §7.1)", r.AchievedHz)
	}
	if r.Mbps < 35 || r.Mbps > 50 {
		t.Errorf("bandwidth = %f Mbps, want ~40", r.Mbps)
	}
	if r.String() == "" {
		t.Error("empty report string")
	}
}

func TestPipelineConsoleBound(t *testing.T) {
	p := Pipeline{
		SrcW: 320, SrcH: 240, DstW: 320, DstH: 240,
		Format:         protocol.CSCS5,
		ServerPerFrame: 8 * time.Millisecond, // parallel instances, cheap
		Instances:      4, CPUs: 8,
		LinkBps: netsim.Rate100Mbps,
		Console: core.SunRay1Costs(), ConsoleVideoEfficiency: DefaultConsoleVideoEfficiency,
	}
	r := p.Analyze()
	if r.Bottleneck != "console" {
		t.Errorf("bottleneck = %s (report %v)", r.Bottleneck, r)
	}
	if r.AchievedHz < 30 || r.AchievedHz > 45 {
		t.Errorf("achieved = %f Hz, want 37-40 band (§7.3)", r.AchievedHz)
	}
}

func TestPipelineLinkBound(t *testing.T) {
	p := Pipeline{
		SrcW: 640, SrcH: 480, DstW: 640, DstH: 480,
		Format:         protocol.CSCS16,
		ServerPerFrame: time.Millisecond,
		Instances:      1, CPUs: 8,
		LinkBps: netsim.Rate10Mbps, // §7: "a 10Mbps IF would not be adequate"
	}
	r := p.Analyze()
	if r.Bottleneck != "link" {
		t.Errorf("bottleneck = %s", r.Bottleneck)
	}
	if r.AchievedHz > 5 {
		t.Errorf("10Mbps carried %f Hz of full video", r.AchievedHz)
	}
}

func TestPipelineSourceBound(t *testing.T) {
	p := Pipeline{
		SrcW: 320, SrcH: 240, DstW: 320, DstH: 240,
		Format:         protocol.CSCS5,
		ServerPerFrame: time.Millisecond,
		Instances:      1, CPUs: 8,
		LinkBps:  netsim.RateGbps,
		TargetHz: 30,
	}
	r := p.Analyze()
	if r.Bottleneck != "source" || r.AchievedHz != 30 {
		t.Errorf("report = %v", r)
	}
}

func TestFrameWireBytes(t *testing.T) {
	p := Pipeline{SrcW: 720, SrcH: 480, Format: protocol.CSCS6}
	wire := p.FrameWireBytes()
	payload := protocol.CSCS6.PayloadLen(720, 480)
	if wire <= payload {
		t.Error("no per-strip overhead counted")
	}
	if wire > payload*11/10 {
		t.Errorf("overhead above 10%%: %d vs %d", wire, payload)
	}
}

func TestStreamEndToEnd(t *testing.T) {
	src := NewQuake(160, 120, 5)
	enc := core.NewEncoder(320, 240)
	screen := fb.New(320, 240)
	dst := protocol.Rect{X: 0, Y: 0, W: 320, H: 240} // 2x console scaling
	hz, wire, err := Stream(src, enc, screen, dst, protocol.CSCS5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hz <= 0 || wire <= 0 {
		t.Fatalf("hz=%f wire=%d", hz, wire)
	}
	// The console screen must approximate the encoder's authoritative FB
	// (both went through the same lossy CSCS, so they are identical).
	if !screen.Equal(enc.FB) {
		t.Error("console and server diverged on video path")
	}
	// And something must be on screen.
	lit := 0
	for _, p := range screen.Pix {
		if p != 0 {
			lit++
		}
	}
	if lit < 320*240/2 {
		t.Errorf("only %d pixels lit", lit)
	}
	// 5bpp wire cost ≈ 5/24 of raw RGB.
	perFrame := float64(wire) / 4
	raw := float64(160 * 120 * 3)
	if ratio := perFrame / raw; ratio > 0.35 {
		t.Errorf("wire/raw = %f, want ≈ 5/24", ratio)
	}
}
