//go:build ignore

// Regenerates seed.slimcap, the checked-in wire-capture fixture that seeds
// FuzzDecodeMessage and exercises the .slimcap reader from a cold file.
// The capture holds one record per protocol message type, a batch, and a
// size-only record, all at fixed timestamps so the file is deterministic.
//
// Run from internal/protocol:
//
//	go run testdata/gen_seed.go
package main

import (
	"log"
	"os"
	"time"

	"slim/internal/obs/capture"
	"slim/internal/protocol"
)

func main() {
	f, err := os.Create("testdata/seed.slimcap")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	// Fixed epoch: the fixture must be byte-stable across regenerations.
	epoch := time.Unix(946684800, 0) // 2000-01-01T00:00:00Z
	if err := capture.WriteHeader(f, "wall", epoch); err != nil {
		log.Fatal(err)
	}

	bm := &protocol.Bitmap{
		Rect: protocol.Rect{X: 1, Y: 2, W: 17, H: 3},
		Fg:   protocol.RGB(1, 2, 3), Bg: protocol.RGB(4, 5, 6),
	}
	bm.Bits = make([]byte, protocol.BitmapRowBytes(17)*3)
	for i := range bm.Bits {
		bm.Bits[i] = byte(i * 37)
	}
	cs := &protocol.CSCS{
		Src: protocol.Rect{W: 8, H: 6}, Dst: protocol.Rect{X: 10, Y: 20, W: 16, H: 12},
		Format: protocol.CSCS12,
	}
	cs.Data = make([]byte, cs.Format.PayloadLen(8, 6))
	for i := range cs.Data {
		cs.Data[i] = byte(i)
	}
	down := []protocol.Message{
		&protocol.Set{Rect: protocol.Rect{X: 3, Y: 4, W: 2, H: 2}, Pixels: []protocol.Pixel{1, 2, 3, 4}},
		bm,
		&protocol.Fill{Rect: protocol.Rect{W: 100, H: 50}, Color: protocol.RGB(9, 8, 7)},
		&protocol.Copy{Rect: protocol.Rect{X: 5, Y: 6, W: 7, H: 8}, DstX: 9, DstY: 10},
		cs,
		&protocol.HelloAck{SessionID: 7},
		&protocol.BandwidthGrant{SessionID: 7, Bps: 10_000_000},
	}
	up := []protocol.Message{
		&protocol.Hello{Width: 1280, Height: 1024, CardToken: "card-42"},
		&protocol.KeyEvent{Code: 0x1234, Down: true},
		&protocol.PointerEvent{X: 100, Y: 200, Buttons: 1},
		&protocol.Status{LastSeq: 10, Dropped: 2, QueueDepth: 3},
		&protocol.Nack{From: 5, To: 9},
		&protocol.BandwidthRequest{SessionID: 7, Bps: 40_000_000},
	}

	var buf []byte
	t := time.Millisecond
	add := func(dir capture.Direction, wire []byte) {
		buf = capture.AppendRecord(buf, capture.Record{
			T: t, Dir: dir, Flow: 1, Console: "desk-1",
			Size: len(wire), Wire: wire,
		})
		t += time.Millisecond
	}
	for i, m := range down {
		add(capture.DirDown, protocol.Encode(nil, uint32(i+1), m))
	}
	for i, m := range up {
		add(capture.DirUp, protocol.Encode(nil, uint32(i+100), m))
	}
	fill := &protocol.Fill{Rect: protocol.Rect{W: 4, H: 4}, Color: 5}
	batch, err := protocol.EncodeBatch(nil, []uint32{20, 21}, []protocol.Message{fill, fill})
	if err != nil {
		log.Fatal(err)
	}
	add(capture.DirDown, batch)
	// One size-only record, as a netsim link would tap it.
	buf = capture.AppendRecord(buf, capture.Record{T: t, Dir: capture.DirDown, Flow: -1, Size: 1500})

	if _, err := f.Write(buf); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote testdata/seed.slimcap (%d bytes)", len(buf)+16)
}
