package protocol

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRectValid(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{0, 0, 1, 1}, true},
		{Rect{0, 0, 0, 1}, false},
		{Rect{0, 0, 1, 0}, false},
		{Rect{-1, 0, 1, 1}, false},
		{Rect{0, -1, 1, 1}, false},
		{Rect{65535, 65535, 65535, 65535}, true},
		{Rect{0, 0, 65536, 1}, false},
	}
	for _, c := range cases {
		if got := c.r.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestRectPixels(t *testing.T) {
	if got := (Rect{W: 10, H: 20}).Pixels(); got != 200 {
		t.Errorf("Pixels = %d, want 200", got)
	}
	if got := (Rect{W: 0, H: 20}).Pixels(); got != 0 {
		t.Errorf("empty Pixels = %d, want 0", got)
	}
}

func TestRectIntersect(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 10, H: 10}
	b := Rect{X: 5, Y: 5, W: 10, H: 10}
	want := Rect{X: 5, Y: 5, W: 5, H: 5}
	if got := a.Intersect(b); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got := a.Intersect(Rect{X: 20, Y: 20, W: 5, H: 5}); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestRectIntersectProperties(t *testing.T) {
	f := func(ax, ay uint8, aw, ah uint8, bx, by, bw, bh uint8) bool {
		a := Rect{int(ax), int(ay), int(aw) + 1, int(ah) + 1}
		b := Rect{int(bx), int(by), int(bw) + 1, int(bh) + 1}
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if ab != ba {
			return false
		}
		if ab.Empty() {
			return true
		}
		return a.Contains(ab) && b.Contains(ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectContains(t *testing.T) {
	outer := Rect{X: 0, Y: 0, W: 100, H: 100}
	if !outer.Contains(Rect{X: 10, Y: 10, W: 80, H: 80}) {
		t.Error("Contains inner = false")
	}
	if outer.Contains(Rect{X: 50, Y: 50, W: 80, H: 80}) {
		t.Error("Contains overflowing = true")
	}
	if !outer.Contains(Rect{}) {
		t.Error("Contains empty = false, want true")
	}
}

func TestPixelComponents(t *testing.T) {
	p := RGB(0x12, 0x34, 0x56)
	if p.R() != 0x12 || p.G() != 0x34 || p.B() != 0x56 {
		t.Errorf("components = %x %x %x", p.R(), p.G(), p.B())
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeSet.String() != "SET" {
		t.Errorf("SET name = %q", TypeSet)
	}
	if got := MsgType(200).String(); got != "MsgType(200)" {
		t.Errorf("unknown name = %q", got)
	}
	for ty := TypeSet; ty < maxMsgType; ty++ {
		if ty.String() == "" {
			t.Errorf("type %d has no name", ty)
		}
	}
}

func TestIsDisplay(t *testing.T) {
	for ty := TypeSet; ty <= TypeCSCS; ty++ {
		if !ty.IsDisplay() {
			t.Errorf("%v.IsDisplay() = false", ty)
		}
	}
	if TypeKey.IsDisplay() || TypeHello.IsDisplay() {
		t.Error("non-display type reported as display")
	}
}

// sampleMessages returns one populated instance of every message type.
func sampleMessages() []Message {
	bm := &Bitmap{
		Rect: Rect{X: 1, Y: 2, W: 17, H: 3},
		Fg:   RGB(1, 2, 3), Bg: RGB(4, 5, 6),
	}
	bm.Bits = make([]byte, BitmapRowBytes(17)*3)
	for i := range bm.Bits {
		bm.Bits[i] = byte(i * 37)
	}
	cs := &CSCS{
		Src: Rect{W: 8, H: 6}, Dst: Rect{X: 10, Y: 20, W: 16, H: 12},
		Format: CSCS12,
	}
	cs.Data = make([]byte, cs.Format.PayloadLen(8, 6))
	for i := range cs.Data {
		cs.Data[i] = byte(i)
	}
	return []Message{
		&Set{Rect: Rect{X: 3, Y: 4, W: 2, H: 2}, Pixels: []Pixel{1, 2, 3, 4}},
		bm,
		&Fill{Rect: Rect{X: 0, Y: 0, W: 100, H: 50}, Color: RGB(9, 8, 7)},
		&Copy{Rect: Rect{X: 5, Y: 6, W: 7, H: 8}, DstX: 9, DstY: 10},
		cs,
		&KeyEvent{Code: 0x1234, Down: true},
		&PointerEvent{X: 100, Y: 200, Buttons: 5},
		&Audio{SampleRate: 44100, Channels: 2, Samples: []byte{1, 2, 3, 4}},
		&Hello{Width: 1280, Height: 1024, CardToken: "card-42"},
		&HelloAck{SessionID: 7},
		&Status{LastSeq: 10, Dropped: 2, QueueDepth: 3},
		&Nack{From: 5, To: 9},
		&BandwidthRequest{SessionID: 1, Bps: 40_000_000},
		&BandwidthGrant{SessionID: 1, Bps: 20_000_000},
		&SessionConnect{Token: "tok"},
		&SessionAttach{SessionID: 3},
		&SessionDetach{SessionID: 3},
		&Ping{Nonce: 0xdeadbeef, Padding: make([]byte, 44)},
		&Pong{Nonce: 0xdeadbeef, Padding: make([]byte, 1180)},
		&Device{Port: 2, Payload: []byte("usb")},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, msg := range sampleMessages() {
		wire := Encode(nil, 42, msg)
		if len(wire) != WireSize(msg) {
			t.Errorf("%v: wire len %d != WireSize %d", msg.Type(), len(wire), WireSize(msg))
		}
		seq, got, n, err := Decode(wire)
		if err != nil {
			t.Fatalf("%v: decode: %v", msg.Type(), err)
		}
		if seq != 42 {
			t.Errorf("%v: seq = %d", msg.Type(), seq)
		}
		if n != len(wire) {
			t.Errorf("%v: consumed %d of %d", msg.Type(), n, len(wire))
		}
		if !reflect.DeepEqual(normalize(msg), normalize(got)) {
			t.Errorf("%v: roundtrip mismatch:\n have %#v\n want %#v", msg.Type(), got, msg)
		}
	}
}

// normalize maps nil and empty slices to a canonical form for DeepEqual.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *Ping:
		if len(v.Padding) == 0 {
			v.Padding = nil
		}
	case *Pong:
		if len(v.Padding) == 0 {
			v.Padding = nil
		}
	}
	return m
}

func TestDecodeAllBatched(t *testing.T) {
	msgs := sampleMessages()
	var wire []byte
	for i, m := range msgs {
		wire = Encode(wire, uint32(i+1), m)
	}
	got, seqs, err := DecodeAll(wire)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range got {
		if seqs[i] != uint32(i+1) {
			t.Errorf("seq[%d] = %d", i, seqs[i])
		}
		if got[i].Type() != msgs[i].Type() {
			t.Errorf("type[%d] = %v, want %v", i, got[i].Type(), msgs[i].Type())
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	good := Encode(nil, 1, &Fill{Rect: Rect{W: 1, H: 1}, Color: 0})
	cases := []struct {
		name string
		wire []byte
	}{
		{"short header", good[:4]},
		{"bad magic", append([]byte{0, 0}, good[2:]...)},
		{"bad version", mut(good, 2, 99)},
		{"bad type", mut(good, 3, 200)},
		{"truncated body", good[:len(good)-1]},
	}
	for _, c := range cases {
		if _, _, _, err := Decode(c.wire); err == nil {
			t.Errorf("%s: decode succeeded, want error", c.name)
		}
	}
}

func mut(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}

func TestSetUnmarshalValidates(t *testing.T) {
	// SET with mismatched pixel count must fail.
	msg := &Set{Rect: Rect{W: 2, H: 2}, Pixels: []Pixel{1, 2, 3, 4}}
	wire := Encode(nil, 1, msg)
	// Truncate one pixel (3 bytes).
	wire = wire[:len(wire)-3]
	// Fix the body length header so only the pixel check can complain.
	wire[11] -= 3
	if _, _, _, err := Decode(wire); err == nil {
		t.Error("SET with short pixels decoded successfully")
	}
}

// Property: any random bytes either fail to decode or decode to a message
// that re-encodes to the identical prefix (no crashes, no corruption).
func TestDecodeFuzzProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		seq, msg, used, err := Decode(buf)
		if err != nil {
			return true
		}
		re := Encode(nil, seq, msg)
		if len(re) != used {
			return false
		}
		for i := range re {
			if re[i] != buf[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < 5000; i++ {
		if !f() {
			t.Fatal("decode/re-encode mismatch on random input")
		}
	}
}

func TestBitmapBitAt(t *testing.T) {
	m := &Bitmap{Rect: Rect{W: 9, H: 2}}
	m.Bits = make([]byte, BitmapRowBytes(9)*2)
	m.Bits[0] = 0x80 // (0,0)
	m.Bits[1] = 0x80 // (8,0)
	m.Bits[2] = 0x01 // (7,1)
	if !m.BitAt(0, 0) || !m.BitAt(8, 0) || !m.BitAt(7, 1) {
		t.Error("expected bits not set")
	}
	if m.BitAt(1, 0) || m.BitAt(0, 1) {
		t.Error("unexpected bits set")
	}
}

func TestCSCSPayloadLen(t *testing.T) {
	// 16x16 at 12 bpp: Y 8 bits * 256 px = 256 bytes; chroma 8x8 blocks *
	// 2 planes * 8 bits = 128 bytes.
	if got := CSCS12.PayloadLen(16, 16); got != 256+128 {
		t.Errorf("CSCS12 16x16 payload = %d, want 384", got)
	}
	// Odd sizes round chroma up.
	if got := CSCS12.PayloadLen(3, 3); got != (9*8+7)/8+(2*2*2*8+7)/8 {
		t.Errorf("CSCS12 3x3 payload = %d", got)
	}
	// Bits per pixel is as advertised for large even frames.
	for _, f := range []CSCSFormat{CSCS16, CSCS12, CSCS8, CSCS6, CSCS5} {
		got := float64(f.PayloadLen(640, 480)*8) / (640 * 480)
		if diff := got - f.BitsPerPixel(); diff > 0.01 || diff < -0.01 {
			t.Errorf("%v: %f bits/px, want %f", f, got, f.BitsPerPixel())
		}
	}
	if CSCSFormat(99).Valid() {
		t.Error("format 99 reported valid")
	}
}

func TestSequencer(t *testing.T) {
	var s Sequencer
	if s.Current() != 0 {
		t.Error("fresh sequencer not at 0")
	}
	if s.Next() != 1 || s.Next() != 2 || s.Current() != 2 {
		t.Error("sequence not monotonic from 1")
	}
}

func TestGapTrackerInOrder(t *testing.T) {
	g := NewGapTracker(4)
	for seq := uint32(1); seq <= 10; seq++ {
		if nacks := g.Observe(seq); len(nacks) != 0 {
			t.Fatalf("in-order delivery produced nacks: %v", nacks)
		}
	}
	if g.Highest() != 10 {
		t.Errorf("highest = %d", g.Highest())
	}
}

func TestGapTrackerReorder(t *testing.T) {
	g := NewGapTracker(4)
	g.Observe(1)
	// 3 before 2, within the window: no nack.
	if nacks := g.Observe(3); len(nacks) != 0 {
		t.Fatalf("small reorder nacked: %v", nacks)
	}
	if nacks := g.Observe(2); len(nacks) != 0 {
		t.Fatalf("fill-in nacked: %v", nacks)
	}
	if g.Highest() != 3 {
		t.Errorf("highest = %d, want 3", g.Highest())
	}
}

func TestGapTrackerLoss(t *testing.T) {
	g := NewGapTracker(2)
	g.Observe(1)
	// Jump far beyond the window: 2..9 lost.
	nacks := g.Observe(10)
	if len(nacks) != 1 || nacks[0].From != 2 || nacks[0].To != 9 {
		t.Fatalf("nacks = %v, want [{2 9}]", nacks)
	}
	if g.Highest() != 10 {
		t.Errorf("highest = %d, want 10", g.Highest())
	}
}

func TestGapTrackerPartialLoss(t *testing.T) {
	g := NewGapTracker(2)
	g.Observe(1)
	g.Observe(3) // pending
	nacks := g.Observe(10)
	// 2 and 4..9 are missing; 3 arrived.
	if len(nacks) != 2 {
		t.Fatalf("nacks = %v, want two ranges", nacks)
	}
	if nacks[0].From != 2 || nacks[0].To != 2 || nacks[1].From != 4 || nacks[1].To != 9 {
		t.Fatalf("nacks = %v, want [{2 2} {4 9}]", nacks)
	}
}

func TestGapTrackerDuplicates(t *testing.T) {
	g := NewGapTracker(4)
	g.Observe(1)
	g.Observe(2)
	if nacks := g.Observe(1); len(nacks) != 0 {
		t.Error("duplicate produced nacks")
	}
	if g.Highest() != 2 {
		t.Errorf("highest = %d", g.Highest())
	}
}
