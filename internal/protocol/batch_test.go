package protocol

import (
	"testing"
)

func TestBatchRoundTrip(t *testing.T) {
	msgs := []Message{
		&Fill{Rect: Rect{W: 10, H: 10}, Color: RGB(1, 2, 3)},
		&Copy{Rect: Rect{W: 5, H: 5}, DstX: 1, DstY: 2},
		&KeyEvent{Code: 'q', Down: true},
	}
	seqs := []uint32{100, 101, 105}
	wire, err := EncodeBatch(nil, seqs, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != BatchWireSize(msgs) {
		t.Errorf("wire %d != BatchWireSize %d", len(wire), BatchWireSize(msgs))
	}
	if !IsBatch(wire) {
		t.Error("IsBatch = false")
	}
	gotSeqs, gotMsgs, err := DecodeBatch(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMsgs) != 3 {
		t.Fatalf("decoded %d messages", len(gotMsgs))
	}
	for i := range seqs {
		if gotSeqs[i] != seqs[i] {
			t.Errorf("seq[%d] = %d, want %d", i, gotSeqs[i], seqs[i])
		}
		if gotMsgs[i].Type() != msgs[i].Type() {
			t.Errorf("type[%d] = %v", i, gotMsgs[i].Type())
		}
	}
}

func TestBatchSavesHeaders(t *testing.T) {
	msgs := []Message{}
	seqs := []uint32{}
	plain := 0
	for i := 0; i < 20; i++ {
		m := &Fill{Rect: Rect{X: i, Y: i, W: 4, H: 4}, Color: Pixel(i)}
		msgs = append(msgs, m)
		seqs = append(seqs, uint32(i+1))
		plain += WireSize(m)
	}
	batched := BatchWireSize(msgs)
	// 20 fills: plain 20*(12+11)=460; batched 8+20*(4+11)=308.
	if batched >= plain*3/4 {
		t.Errorf("batched %d not well below plain %d", batched, plain)
	}
}

func TestBatchErrors(t *testing.T) {
	fill := &Fill{Rect: Rect{W: 1, H: 1}}
	if _, err := EncodeBatch(nil, nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := EncodeBatch(nil, []uint32{1}, []Message{fill, fill}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := EncodeBatch(nil, []uint32{1, 300}, []Message{fill, fill}); err == nil {
		t.Error("seq delta > 255 accepted")
	}
	big := &Set{Rect: Rect{W: 256, H: 256}, Pixels: make([]Pixel, 256*256)}
	if _, err := EncodeBatch(nil, []uint32{1}, []Message{big}); err == nil {
		t.Error("oversized body accepted")
	}
}

func TestDecodeBatchErrors(t *testing.T) {
	good, err := EncodeBatch(nil, []uint32{1}, []Message{&Fill{Rect: Rect{W: 1, H: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		good[:4],                 // short
		append(good, 0xff),       // trailing garbage
		mut(good, 2, 99),         // bad version
		mut(good, 8, 200),        // bad inner type
		good[:len(good)-1],       // truncated body
		{0, 0, 0, 0, 0, 0, 0, 0}, // bad magic
	}
	for i, c := range cases {
		if _, _, err := DecodeBatch(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeAny(t *testing.T) {
	fill := &Fill{Rect: Rect{W: 2, H: 2}, Color: 5}
	plain := Encode(nil, 9, fill)
	seqs, msgs, err := DecodeAny(plain)
	if err != nil || len(msgs) != 1 || seqs[0] != 9 {
		t.Fatalf("plain DecodeAny = %v %v %v", seqs, msgs, err)
	}
	batch, err := EncodeBatch(nil, []uint32{4, 5}, []Message{fill, fill})
	if err != nil {
		t.Fatal(err)
	}
	seqs, msgs, err = DecodeAny(batch)
	if err != nil || len(msgs) != 2 || seqs[1] != 5 {
		t.Fatalf("batch DecodeAny = %v %v %v", seqs, msgs, err)
	}
}
