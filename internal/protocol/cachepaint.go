package protocol

import "encoding/binary"

// Console capability bits, advertised in Hello.Caps. A server must not
// emit a command gated on a capability the console did not advertise;
// absent bits fall back to the gen-1 Table 1 command set.
const (
	// CapCachePaint: the console keeps a content-addressed dirty-tile
	// cache and accepts CACHE_PAINT commands (gen-2 codec).
	CapCachePaint uint16 = 1 << 0
)

// CachePaint paints a rectangle from the console's content-addressed
// tile cache: Key is the 64-bit hash of the tile's pixel content, taken
// when the console last painted those pixels by any other display
// command. 28 bytes on the wire replace a re-send of pixels the console
// has already seen (re-exposed windows, scrolled-back content, blinking
// cursors).
//
// The command is self-validating: the console stores tiles keyed by the
// hash of their own pixels, so a stale or missing entry cannot paint
// wrong content — the console simply treats the sequence number as lost
// and NACKs it, and the server repaints the rectangle from its true
// frame buffer (the §2.2 recovery path, unchanged). That property is
// what lets both sides run bounded caches with no invalidation
// handshake.
type CachePaint struct {
	Rect Rect
	Key  uint64
}

// Type implements Message.
func (m *CachePaint) Type() MsgType { return TypeCachePaint }

// BodyLen implements Message.
func (m *CachePaint) BodyLen() int { return 8 + 8 }

// MarshalBody implements Message.
func (m *CachePaint) MarshalBody(dst []byte) []byte {
	dst = putRect(dst, m.Rect)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], m.Key)
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *CachePaint) UnmarshalBody(src []byte) error {
	r, rest, err := getRect(src)
	if err != nil {
		return err
	}
	if !r.Valid() {
		return ErrBadGeometry
	}
	if len(rest) != 8 {
		return ErrBodyLen
	}
	m.Rect = r
	m.Key = binary.BigEndian.Uint64(rest)
	return nil
}
