package protocol

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the wire-format invariants.

// genRect produces a valid random rectangle bounded to keep payloads small.
func genRect(rng *rand.Rand) Rect {
	return Rect{
		X: rng.Intn(512), Y: rng.Intn(512),
		W: 1 + rng.Intn(48), H: 1 + rng.Intn(48),
	}
}

// genMessage builds a random valid message of a random type.
func genMessage(rng *rand.Rand) Message {
	switch rng.Intn(7) {
	case 0:
		r := genRect(rng)
		pix := make([]Pixel, r.Pixels())
		for i := range pix {
			pix[i] = Pixel(rng.Uint32() & 0xffffff)
		}
		return &Set{Rect: r, Pixels: pix}
	case 1:
		r := genRect(rng)
		bits := make([]byte, BitmapRowBytes(r.W)*r.H)
		rng.Read(bits)
		return &Bitmap{Rect: r, Fg: Pixel(rng.Uint32() & 0xffffff), Bg: Pixel(rng.Uint32() & 0xffffff), Bits: bits}
	case 2:
		return &Fill{Rect: genRect(rng), Color: Pixel(rng.Uint32() & 0xffffff)}
	case 3:
		return &Copy{Rect: genRect(rng), DstX: rng.Intn(512), DstY: rng.Intn(512)}
	case 4:
		r := genRect(rng)
		f := CSCSFormat(rng.Intn(int(numCSCSFormats)))
		data := make([]byte, f.PayloadLen(r.W, r.H))
		rng.Read(data)
		return &CSCS{Src: r, Dst: genRect(rng), Format: f, Data: data}
	case 5:
		return &KeyEvent{Code: uint16(rng.Uint32()), Down: rng.Intn(2) == 0}
	default:
		return &PointerEvent{X: uint16(rng.Uint32()), Y: uint16(rng.Uint32()), Buttons: uint8(rng.Uint32())}
	}
}

// Property: Encode/Decode is the identity on all valid random messages.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 2000; i++ {
		msg := genMessage(rng)
		seq := rng.Uint32()
		wire := Encode(nil, seq, msg)
		gotSeq, got, n, err := Decode(wire)
		if err != nil {
			t.Fatalf("msg %v: %v", msg.Type(), err)
		}
		if gotSeq != seq || n != len(wire) {
			t.Fatalf("framing mismatch for %v", msg.Type())
		}
		if !reflect.DeepEqual(msg, got) {
			t.Fatalf("roundtrip mismatch for %v", msg.Type())
		}
	}
}

// Property: batch framing is equivalent to plain framing for any random
// message set with in-window sequence numbers, and strictly smaller on the
// wire for ≥2 messages.
func TestQuickBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for round := 0; round < 300; round++ {
		n := 1 + rng.Intn(8)
		msgs := make([]Message, n)
		seqs := make([]uint32, n)
		base := rng.Uint32() / 2
		plainBytes := 0
		for i := range msgs {
			msgs[i] = genMessage(rng)
			seqs[i] = base + uint32(i)
			plainBytes += WireSize(msgs[i])
		}
		wire, err := EncodeBatch(nil, seqs, msgs)
		if err != nil {
			t.Fatal(err)
		}
		if n >= 2 && len(wire) >= plainBytes {
			t.Fatalf("batch of %d not smaller: %d vs %d", n, len(wire), plainBytes)
		}
		gotSeqs, gotMsgs, err := DecodeBatch(wire)
		if err != nil {
			t.Fatal(err)
		}
		for i := range msgs {
			if gotSeqs[i] != seqs[i] || !reflect.DeepEqual(gotMsgs[i], msgs[i]) {
				t.Fatalf("round %d: message %d mismatch", round, i)
			}
		}
	}
}

// Property: a GapTracker observing a random permutation of 1..n (window
// >= n) converges to highest = n with no spurious nacks outstanding.
func TestQuickGapTrackerPermutation(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%64) + 1
		rng := rand.New(rand.NewSource(seed))
		order := rng.Perm(n)
		g := NewGapTracker(uint32(n) + 1)
		for _, idx := range order {
			g.Observe(uint32(idx) + 1)
		}
		return g.Highest() == uint32(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: in-order delivery with arbitrary duplication never produces a
// nack.
func TestQuickGapTrackerDuplicates(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size%50) + 1
		rng := rand.New(rand.NewSource(seed))
		g := NewGapTracker(4)
		for s := 1; s <= n; s++ {
			for k := 0; k < 1+rng.Intn(3); k++ {
				if nacks := g.Observe(uint32(s)); len(nacks) != 0 {
					return false
				}
			}
		}
		return g.Highest() == uint32(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
