package protocol

import (
	"encoding/binary"
	"fmt"
)

// Set carries literal pixel values for a rectangular region (Table 1).
// Pixels are packed 3 bytes each in row-major order.
type Set struct {
	Rect   Rect
	Pixels []Pixel
}

// Type implements Message.
func (m *Set) Type() MsgType { return TypeSet }

// BodyLen implements Message.
func (m *Set) BodyLen() int { return 8 + 3*len(m.Pixels) }

// MarshalBody implements Message.
func (m *Set) MarshalBody(dst []byte) []byte {
	dst = putRect(dst, m.Rect)
	for _, p := range m.Pixels {
		dst = append(dst, p.R(), p.G(), p.B())
	}
	return dst
}

// UnmarshalBody implements Message.
func (m *Set) UnmarshalBody(src []byte) error {
	r, rest, err := getRect(src)
	if err != nil {
		return err
	}
	if !r.Valid() {
		return ErrBadGeometry
	}
	n := r.Pixels()
	if len(rest) != 3*n {
		return fmt.Errorf("%w: SET wants %d pixel bytes, have %d", ErrBodyLen, 3*n, len(rest))
	}
	m.Rect = r
	m.Pixels = make([]Pixel, n)
	for i := 0; i < n; i++ {
		m.Pixels[i] = RGB(rest[3*i], rest[3*i+1], rest[3*i+2])
	}
	return nil
}

// Bitmap expands a 1-bit-per-pixel bitmap into a two-colour rectangle
// (Table 1): foreground where the bitmap holds 1, background where it holds
// 0. This is the workhorse for text — a glyph row costs one bit per pixel
// instead of three bytes.
type Bitmap struct {
	Rect Rect
	Fg   Pixel
	Bg   Pixel
	// Bits holds H rows, each padded to a whole byte: ceil(W/8) bytes per
	// row, MSB first.
	Bits []byte
}

// BitmapRowBytes reports the padded byte width of one bitmap row.
func BitmapRowBytes(w int) int { return (w + 7) / 8 }

// Type implements Message.
func (m *Bitmap) Type() MsgType { return TypeBitmap }

// BodyLen implements Message.
func (m *Bitmap) BodyLen() int { return 8 + 6 + len(m.Bits) }

// MarshalBody implements Message.
func (m *Bitmap) MarshalBody(dst []byte) []byte {
	dst = putRect(dst, m.Rect)
	dst = append(dst, m.Fg.R(), m.Fg.G(), m.Fg.B())
	dst = append(dst, m.Bg.R(), m.Bg.G(), m.Bg.B())
	return append(dst, m.Bits...)
}

// UnmarshalBody implements Message.
func (m *Bitmap) UnmarshalBody(src []byte) error {
	r, rest, err := getRect(src)
	if err != nil {
		return err
	}
	if !r.Valid() {
		return ErrBadGeometry
	}
	if len(rest) < 6 {
		return ErrShort
	}
	m.Fg = RGB(rest[0], rest[1], rest[2])
	m.Bg = RGB(rest[3], rest[4], rest[5])
	rest = rest[6:]
	want := BitmapRowBytes(r.W) * r.H
	if len(rest) != want {
		return fmt.Errorf("%w: BITMAP wants %d bitmap bytes, have %d", ErrBodyLen, want, len(rest))
	}
	m.Rect = r
	m.Bits = append([]byte(nil), rest...)
	return nil
}

// BitAt reports the bitmap bit for pixel (x, y) inside the rectangle.
func (m *Bitmap) BitAt(x, y int) bool {
	row := BitmapRowBytes(m.Rect.W)
	b := m.Bits[y*row+x/8]
	return b&(0x80>>uint(x%8)) != 0
}

// Fill paints a rectangular region with a single pixel value (Table 1).
// The paper found FILL alone reduces bandwidth by 40–75%.
type Fill struct {
	Rect  Rect
	Color Pixel
}

// Type implements Message.
func (m *Fill) Type() MsgType { return TypeFill }

// BodyLen implements Message.
func (m *Fill) BodyLen() int { return 8 + 3 }

// MarshalBody implements Message.
func (m *Fill) MarshalBody(dst []byte) []byte {
	dst = putRect(dst, m.Rect)
	return append(dst, m.Color.R(), m.Color.G(), m.Color.B())
}

// UnmarshalBody implements Message.
func (m *Fill) UnmarshalBody(src []byte) error {
	r, rest, err := getRect(src)
	if err != nil {
		return err
	}
	if !r.Valid() {
		return ErrBadGeometry
	}
	if len(rest) != 3 {
		return ErrBodyLen
	}
	m.Rect = r
	m.Color = RGB(rest[0], rest[1], rest[2])
	return nil
}

// Copy moves a rectangle within the console's frame buffer (Table 1): the
// source Rect is copied so its top-left lands at (DstX, DstY). Scrolling a
// window costs 14 bytes regardless of size.
type Copy struct {
	Rect       Rect
	DstX, DstY int
}

// Type implements Message.
func (m *Copy) Type() MsgType { return TypeCopy }

// BodyLen implements Message.
func (m *Copy) BodyLen() int { return 8 + 4 }

// MarshalBody implements Message.
func (m *Copy) MarshalBody(dst []byte) []byte {
	dst = putRect(dst, m.Rect)
	var b [4]byte
	binary.BigEndian.PutUint16(b[0:], uint16(m.DstX))
	binary.BigEndian.PutUint16(b[2:], uint16(m.DstY))
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *Copy) UnmarshalBody(src []byte) error {
	r, rest, err := getRect(src)
	if err != nil {
		return err
	}
	if !r.Valid() {
		return ErrBadGeometry
	}
	if len(rest) != 4 {
		return ErrBodyLen
	}
	m.Rect = r
	m.DstX = int(binary.BigEndian.Uint16(rest[0:]))
	m.DstY = int(binary.BigEndian.Uint16(rest[2:]))
	return nil
}

// CSCSFormat selects the compressed YUV encoding used by a CSCS command.
// The bits-per-pixel levels match Table 5 and §7 of the paper: luma is
// carried at YBits per pixel and chroma at CBits per component, subsampled
// over 2x2 blocks, giving BPP = YBits + CBits/2.
type CSCSFormat uint8

// CSCS formats, named by total bits per pixel.
const (
	CSCS16 CSCSFormat = iota // Y12 + C8/2x2: 16 bpp
	CSCS12                   // Y8 + C8/2x2: 12 bpp
	CSCS8                    // Y6 + C4/2x2: 8 bpp
	CSCS6                    // Y4 + C4/2x2: 6 bpp (used for MPEG-II in §7.1)
	CSCS5                    // Y4 + C2/2x2: 5 bpp (used for Quake in §7.3)
	numCSCSFormats
)

// Params reports the luma and chroma bit depths of the format.
func (f CSCSFormat) Params() (yBits, cBits int) {
	switch f {
	case CSCS16:
		return 12, 8
	case CSCS12:
		return 8, 8
	case CSCS8:
		return 6, 4
	case CSCS6:
		return 4, 4
	case CSCS5:
		return 4, 2
	default:
		return 8, 8
	}
}

// BitsPerPixel reports the total encoded bits per source pixel.
func (f CSCSFormat) BitsPerPixel() float64 {
	y, c := f.Params()
	return float64(y) + float64(c)/2
}

// Valid reports whether f is a defined format.
func (f CSCSFormat) Valid() bool { return f < numCSCSFormats }

func (f CSCSFormat) String() string {
	switch f {
	case CSCS16:
		return "CSCS-16bpp"
	case CSCS12:
		return "CSCS-12bpp"
	case CSCS8:
		return "CSCS-8bpp"
	case CSCS6:
		return "CSCS-6bpp"
	case CSCS5:
		return "CSCS-5bpp"
	}
	return fmt.Sprintf("CSCSFormat(%d)", uint8(f))
}

// PayloadLen reports the encoded payload size in bytes for a w×h source
// region: packed luma plane plus two 2x2-subsampled chroma planes.
func (f CSCSFormat) PayloadLen(w, h int) int {
	y, c := f.Params()
	yBits := w * h * y
	cw, ch := (w+1)/2, (h+1)/2
	cBits := 2 * cw * ch * c
	return (yBits+7)/8 + (cBits+7)/8
}

// CSCS color-space converts a YUV region to RGB with optional bilinear
// scaling (Table 1). Src describes the transmitted YUV region geometry;
// Dst is where (and at what size) it lands in the frame buffer. Sending
// half-resolution video and scaling at the console is the bandwidth trick
// of §7 and §8.1.
type CSCS struct {
	Src    Rect // geometry of the encoded YUV data (X,Y unused; W,H matter)
	Dst    Rect // destination rectangle in the frame buffer
	Format CSCSFormat
	// Data is the packed YUV payload; see CSCSFormat.PayloadLen.
	Data []byte
}

// Type implements Message.
func (m *CSCS) Type() MsgType { return TypeCSCS }

// BodyLen implements Message.
func (m *CSCS) BodyLen() int { return 8 + 8 + 1 + len(m.Data) }

// MarshalBody implements Message.
func (m *CSCS) MarshalBody(dst []byte) []byte {
	dst = putRect(dst, m.Src)
	dst = putRect(dst, m.Dst)
	dst = append(dst, byte(m.Format))
	return append(dst, m.Data...)
}

// UnmarshalBody implements Message.
func (m *CSCS) UnmarshalBody(src []byte) error {
	s, rest, err := getRect(src)
	if err != nil {
		return err
	}
	d, rest, err := getRect(rest)
	if err != nil {
		return err
	}
	if !s.Valid() || !d.Valid() {
		return ErrBadGeometry
	}
	if len(rest) < 1 {
		return ErrShort
	}
	f := CSCSFormat(rest[0])
	if !f.Valid() {
		return fmt.Errorf("%w: CSCS format %d", ErrBadType, rest[0])
	}
	rest = rest[1:]
	want := f.PayloadLen(s.W, s.H)
	if len(rest) != want {
		return fmt.Errorf("%w: CSCS wants %d payload bytes, have %d", ErrBodyLen, want, len(rest))
	}
	m.Src, m.Dst, m.Format = s, d, f
	m.Data = append([]byte(nil), rest...)
	return nil
}
