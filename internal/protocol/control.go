package protocol

import (
	"encoding/binary"
	"fmt"
)

// KeyEvent reports a keyboard state change from the console. In SLIM all
// input is forwarded raw to the server (§4.1): the console does no local
// echo, no editing, nothing.
type KeyEvent struct {
	Code uint16 // USB HID usage code
	Down bool
}

// Type implements Message.
func (m *KeyEvent) Type() MsgType { return TypeKey }

// BodyLen implements Message.
func (m *KeyEvent) BodyLen() int { return 3 }

// MarshalBody implements Message.
func (m *KeyEvent) MarshalBody(dst []byte) []byte {
	var b [3]byte
	binary.BigEndian.PutUint16(b[0:], m.Code)
	if m.Down {
		b[2] = 1
	}
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *KeyEvent) UnmarshalBody(src []byte) error {
	if len(src) != 3 {
		return ErrBodyLen
	}
	if src[2] > 1 {
		// Strict canonical encoding: exactly 0 or 1, so every valid
		// datagram has a single byte representation (fuzz-pinned).
		return fmt.Errorf("protocol: key state byte %d", src[2])
	}
	m.Code = binary.BigEndian.Uint16(src)
	m.Down = src[2] == 1
	return nil
}

// PointerEvent reports mouse position and button state from the console.
type PointerEvent struct {
	X, Y    uint16
	Buttons uint8 // bitmask, bit 0 = left
}

// Type implements Message.
func (m *PointerEvent) Type() MsgType { return TypePointer }

// BodyLen implements Message.
func (m *PointerEvent) BodyLen() int { return 5 }

// MarshalBody implements Message.
func (m *PointerEvent) MarshalBody(dst []byte) []byte {
	var b [5]byte
	binary.BigEndian.PutUint16(b[0:], m.X)
	binary.BigEndian.PutUint16(b[2:], m.Y)
	b[4] = m.Buttons
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *PointerEvent) UnmarshalBody(src []byte) error {
	if len(src) != 5 {
		return ErrBodyLen
	}
	m.X = binary.BigEndian.Uint16(src[0:])
	m.Y = binary.BigEndian.Uint16(src[2:])
	m.Buttons = src[4]
	return nil
}

// Audio carries a block of interleaved 16-bit PCM samples to the console.
type Audio struct {
	SampleRate uint32
	Channels   uint8
	Samples    []byte // little-endian int16 pairs
}

// Type implements Message.
func (m *Audio) Type() MsgType { return TypeAudio }

// BodyLen implements Message.
func (m *Audio) BodyLen() int { return 5 + len(m.Samples) }

// MarshalBody implements Message.
func (m *Audio) MarshalBody(dst []byte) []byte {
	var b [5]byte
	binary.BigEndian.PutUint32(b[0:], m.SampleRate)
	b[4] = m.Channels
	dst = append(dst, b[:]...)
	return append(dst, m.Samples...)
}

// UnmarshalBody implements Message.
func (m *Audio) UnmarshalBody(src []byte) error {
	if len(src) < 5 {
		return ErrShort
	}
	m.SampleRate = binary.BigEndian.Uint32(src)
	m.Channels = src[4]
	if m.Channels == 0 {
		return fmt.Errorf("protocol: audio with zero channels")
	}
	m.Samples = append([]byte(nil), src[5:]...)
	return nil
}

// Hello is the console's first message on power-up: it advertises its
// display geometry, the token read from the smart card (empty if none is
// inserted), and optional capability bits (Cap*). The server replies
// with HelloAck.
//
// Caps rides as a trailing 2-byte extension present only when nonzero:
// a gen-1 console emits the original 6+n-byte body and a gen-1 server
// decoding a gen-2 Hello would reject the extension rather than
// misparse it. The encoding stays canonical (one byte representation
// per value) because an explicit zero extension is rejected on decode.
type Hello struct {
	Width, Height uint16
	CardToken     string
	Caps          uint16
}

// Type implements Message.
func (m *Hello) Type() MsgType { return TypeHello }

// BodyLen implements Message.
func (m *Hello) BodyLen() int {
	n := 6 + len(m.CardToken)
	if m.Caps != 0 {
		n += 2
	}
	return n
}

// MarshalBody implements Message.
func (m *Hello) MarshalBody(dst []byte) []byte {
	var b [6]byte
	binary.BigEndian.PutUint16(b[0:], m.Width)
	binary.BigEndian.PutUint16(b[2:], m.Height)
	binary.BigEndian.PutUint16(b[4:], uint16(len(m.CardToken)))
	dst = append(dst, b[:]...)
	dst = append(dst, m.CardToken...)
	if m.Caps != 0 {
		var c [2]byte
		binary.BigEndian.PutUint16(c[:], m.Caps)
		dst = append(dst, c[:]...)
	}
	return dst
}

// UnmarshalBody implements Message.
func (m *Hello) UnmarshalBody(src []byte) error {
	if len(src) < 6 {
		return ErrShort
	}
	m.Width = binary.BigEndian.Uint16(src[0:])
	m.Height = binary.BigEndian.Uint16(src[2:])
	n := int(binary.BigEndian.Uint16(src[4:]))
	switch len(src) {
	case 6 + n:
		m.CardToken = string(src[6:])
		m.Caps = 0
	case 6 + n + 2:
		m.CardToken = string(src[6 : 6+n])
		m.Caps = binary.BigEndian.Uint16(src[6+n:])
		if m.Caps == 0 {
			// Zero caps must omit the extension (canonical encoding).
			return ErrBodyLen
		}
	default:
		return ErrBodyLen
	}
	return nil
}

// HelloAck acknowledges a Hello and tells the console which session (if
// any) has been attached to it.
type HelloAck struct {
	SessionID uint32 // 0 = no session (login screen)
}

// Type implements Message.
func (m *HelloAck) Type() MsgType { return TypeHelloAck }

// BodyLen implements Message.
func (m *HelloAck) BodyLen() int { return 4 }

// MarshalBody implements Message.
func (m *HelloAck) MarshalBody(dst []byte) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], m.SessionID)
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *HelloAck) UnmarshalBody(src []byte) error {
	if len(src) != 4 {
		return ErrBodyLen
	}
	m.SessionID = binary.BigEndian.Uint32(src)
	return nil
}

// Status is a periodic console heartbeat carrying decode statistics; the
// server uses it to detect losses and console overload.
type Status struct {
	LastSeq    uint32 // highest display sequence applied
	Dropped    uint32 // commands dropped since boot
	QueueDepth uint16 // commands waiting to be decoded
}

// Type implements Message.
func (m *Status) Type() MsgType { return TypeStatus }

// BodyLen implements Message.
func (m *Status) BodyLen() int { return 10 }

// MarshalBody implements Message.
func (m *Status) MarshalBody(dst []byte) []byte {
	var b [10]byte
	binary.BigEndian.PutUint32(b[0:], m.LastSeq)
	binary.BigEndian.PutUint32(b[4:], m.Dropped)
	binary.BigEndian.PutUint16(b[8:], m.QueueDepth)
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *Status) UnmarshalBody(src []byte) error {
	if len(src) != 10 {
		return ErrBodyLen
	}
	m.LastSeq = binary.BigEndian.Uint32(src[0:])
	m.Dropped = binary.BigEndian.Uint32(src[4:])
	m.QueueDepth = binary.BigEndian.Uint16(src[8:])
	return nil
}

// Nack asks the sender to regenerate display state for a sequence gap.
// Because every SLIM message is idempotent, recovery is replay (or simply
// repainting the damaged region from the server's true frame buffer) —
// never stop-and-wait (§2.2).
type Nack struct {
	From, To uint32 // inclusive sequence range that went missing
}

// Type implements Message.
func (m *Nack) Type() MsgType { return TypeNack }

// BodyLen implements Message.
func (m *Nack) BodyLen() int { return 8 }

// MarshalBody implements Message.
func (m *Nack) MarshalBody(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:], m.From)
	binary.BigEndian.PutUint32(b[4:], m.To)
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *Nack) UnmarshalBody(src []byte) error {
	if len(src) != 8 {
		return ErrBodyLen
	}
	m.From = binary.BigEndian.Uint32(src[0:])
	m.To = binary.BigEndian.Uint32(src[4:])
	return nil
}

// BandwidthRequest asks the console for a downstream bandwidth allocation
// (§7): applications on possibly different servers request based on their
// past needs, and the console arbitrates.
type BandwidthRequest struct {
	SessionID uint32
	Bps       uint64 // requested bits per second
}

// Type implements Message.
func (m *BandwidthRequest) Type() MsgType { return TypeBandwidthRequest }

// BodyLen implements Message.
func (m *BandwidthRequest) BodyLen() int { return 12 }

// MarshalBody implements Message.
func (m *BandwidthRequest) MarshalBody(dst []byte) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:], m.SessionID)
	binary.BigEndian.PutUint64(b[4:], m.Bps)
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *BandwidthRequest) UnmarshalBody(src []byte) error {
	if len(src) != 12 {
		return ErrBodyLen
	}
	m.SessionID = binary.BigEndian.Uint32(src[0:])
	m.Bps = binary.BigEndian.Uint64(src[4:])
	return nil
}

// BandwidthGrant is the console's reply to a BandwidthRequest.
type BandwidthGrant struct {
	SessionID uint32
	Bps       uint64 // granted bits per second
}

// Type implements Message.
func (m *BandwidthGrant) Type() MsgType { return TypeBandwidthGrant }

// BodyLen implements Message.
func (m *BandwidthGrant) BodyLen() int { return 12 }

// MarshalBody implements Message.
func (m *BandwidthGrant) MarshalBody(dst []byte) []byte {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:], m.SessionID)
	binary.BigEndian.PutUint64(b[4:], m.Bps)
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *BandwidthGrant) UnmarshalBody(src []byte) error {
	if len(src) != 12 {
		return ErrBodyLen
	}
	m.SessionID = binary.BigEndian.Uint32(src[0:])
	m.Bps = binary.BigEndian.Uint64(src[4:])
	return nil
}

// SessionConnect carries an authentication credential from a console to the
// authentication manager (smart card insertion, or typed password in card-
// less deployments).
type SessionConnect struct {
	Token string
}

// Type implements Message.
func (m *SessionConnect) Type() MsgType { return TypeSessionConnect }

// BodyLen implements Message.
func (m *SessionConnect) BodyLen() int { return 2 + len(m.Token) }

// MarshalBody implements Message.
func (m *SessionConnect) MarshalBody(dst []byte) []byte {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], uint16(len(m.Token)))
	dst = append(dst, b[:]...)
	return append(dst, m.Token...)
}

// UnmarshalBody implements Message.
func (m *SessionConnect) UnmarshalBody(src []byte) error {
	if len(src) < 2 {
		return ErrShort
	}
	n := int(binary.BigEndian.Uint16(src))
	if len(src) != 2+n {
		return ErrBodyLen
	}
	m.Token = string(src[2:])
	return nil
}

// SessionAttach tells a console that a session's display now owns it; the
// server follows it with a full repaint (the console held only soft state).
type SessionAttach struct {
	SessionID uint32
}

// Type implements Message.
func (m *SessionAttach) Type() MsgType { return TypeSessionAttach }

// BodyLen implements Message.
func (m *SessionAttach) BodyLen() int { return 4 }

// MarshalBody implements Message.
func (m *SessionAttach) MarshalBody(dst []byte) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], m.SessionID)
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *SessionAttach) UnmarshalBody(src []byte) error {
	if len(src) != 4 {
		return ErrBodyLen
	}
	m.SessionID = binary.BigEndian.Uint32(src)
	return nil
}

// SessionDetach tells a console its session has moved elsewhere (the user
// pulled the card and resumed at another desk).
type SessionDetach struct {
	SessionID uint32
}

// Type implements Message.
func (m *SessionDetach) Type() MsgType { return TypeSessionDetach }

// BodyLen implements Message.
func (m *SessionDetach) BodyLen() int { return 4 }

// MarshalBody implements Message.
func (m *SessionDetach) MarshalBody(dst []byte) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], m.SessionID)
	return append(dst, b[:]...)
}

// UnmarshalBody implements Message.
func (m *SessionDetach) UnmarshalBody(src []byte) error {
	if len(src) != 4 {
		return ErrBodyLen
	}
	m.SessionID = binary.BigEndian.Uint32(src)
	return nil
}

// Ping and Pong measure the round-trip time of the interconnection fabric
// (the 550 µs result of Table 4). The payload pads the datagram to a chosen
// wire size so the network yardstick of §6.2 (64 B up, 1200 B down) can be
// expressed with the same message.
type Ping struct {
	Nonce   uint64
	Padding []byte
}

// Type implements Message.
func (m *Ping) Type() MsgType { return TypePing }

// BodyLen implements Message.
func (m *Ping) BodyLen() int { return 8 + len(m.Padding) }

// MarshalBody implements Message.
func (m *Ping) MarshalBody(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], m.Nonce)
	dst = append(dst, b[:]...)
	return append(dst, m.Padding...)
}

// UnmarshalBody implements Message.
func (m *Ping) UnmarshalBody(src []byte) error {
	if len(src) < 8 {
		return ErrShort
	}
	m.Nonce = binary.BigEndian.Uint64(src)
	m.Padding = append([]byte(nil), src[8:]...)
	return nil
}

// Pong answers a Ping, echoing its nonce.
type Pong struct {
	Nonce   uint64
	Padding []byte
}

// Type implements Message.
func (m *Pong) Type() MsgType { return TypePong }

// BodyLen implements Message.
func (m *Pong) BodyLen() int { return 8 + len(m.Padding) }

// MarshalBody implements Message.
func (m *Pong) MarshalBody(dst []byte) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], m.Nonce)
	dst = append(dst, b[:]...)
	return append(dst, m.Padding...)
}

// UnmarshalBody implements Message.
func (m *Pong) UnmarshalBody(src []byte) error {
	if len(src) < 8 {
		return ErrShort
	}
	m.Nonce = binary.BigEndian.Uint64(src)
	m.Padding = append([]byte(nil), src[8:]...)
	return nil
}

// Device carries remote-peripheral traffic (the remote device manager of
// §2.4): opaque bytes tagged with a USB-hub port number.
type Device struct {
	Port    uint8
	Payload []byte
}

// Type implements Message.
func (m *Device) Type() MsgType { return TypeDevice }

// BodyLen implements Message.
func (m *Device) BodyLen() int { return 1 + len(m.Payload) }

// MarshalBody implements Message.
func (m *Device) MarshalBody(dst []byte) []byte {
	dst = append(dst, m.Port)
	return append(dst, m.Payload...)
}

// UnmarshalBody implements Message.
func (m *Device) UnmarshalBody(src []byte) error {
	if len(src) < 1 {
		return ErrShort
	}
	m.Port = src[0]
	m.Payload = append([]byte(nil), src[1:]...)
	return nil
}
