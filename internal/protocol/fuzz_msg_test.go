// FuzzDecodeMessage lives in the external test package so it can seed its
// corpus from the checked-in .slimcap wire-capture fixture via
// internal/obs/capture — which itself imports protocol, so an in-package
// test would be an import cycle. Regenerate the fixture with
// `go run testdata/gen_seed.go`.
package protocol_test

import (
	"os"
	"reflect"
	"testing"

	"slim/internal/obs/capture"
	"slim/internal/protocol"
)

// seedCaptureRecords loads the fixture capture, failing the test (or fuzz
// target) if the checked-in file has rotted.
func seedCaptureRecords(t testing.TB) (capture.Header, []capture.Record) {
	f, err := os.Open("testdata/seed.slimcap")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, recs, err := capture.ReadCapture(f)
	if err != nil {
		t.Fatalf("checked-in seed.slimcap is malformed: %v", err)
	}
	return h, recs
}

// TestSeedCaptureFixture pins the fixture's contents: every wire-bearing
// record must decode (as a single message or a batch), so the corpus the
// fuzzer starts from covers the full message vocabulary and the .slimcap
// reader is exercised from a cold file on every plain `go test` run.
func TestSeedCaptureFixture(t *testing.T) {
	h, recs := seedCaptureRecords(t)
	if h.Version != capture.SlimcapVersion {
		t.Fatalf("fixture version = %d, want %d", h.Version, capture.SlimcapVersion)
	}
	types := map[protocol.MsgType]bool{}
	sizeOnly := 0
	for i, rec := range recs {
		if len(rec.Wire) == 0 {
			if rec.Size == 0 {
				t.Errorf("record %d has neither wire bytes nor a size", i)
			}
			sizeOnly++
			continue
		}
		if protocol.IsBatch(rec.Wire) {
			_, msgs, err := protocol.DecodeBatch(rec.Wire)
			if err != nil {
				t.Errorf("record %d: batch does not decode: %v", i, err)
			}
			for _, m := range msgs {
				types[m.Type()] = true
			}
			continue
		}
		_, m, _, err := protocol.Decode(rec.Wire)
		if err != nil {
			t.Errorf("record %d: does not decode: %v", i, err)
			continue
		}
		types[m.Type()] = true
	}
	for _, want := range []protocol.MsgType{
		protocol.TypeSet, protocol.TypeBitmap, protocol.TypeFill,
		protocol.TypeCopy, protocol.TypeCSCS,
	} {
		if !types[want] {
			t.Errorf("fixture is missing a %v record", want)
		}
	}
	if sizeOnly == 0 {
		t.Error("fixture has no size-only record (netsim shape uncovered)")
	}
}

// FuzzDecodeMessage is the semantic round-trip fuzzer: any input that
// decodes must re-encode and decode back to a deeply-equal message. This
// is stronger than FuzzDecode's byte-prefix check — it catches fields the
// codec silently drops or aliases, not just framing bugs.
func FuzzDecodeMessage(f *testing.F) {
	_, recs := seedCaptureRecords(f)
	for _, rec := range recs {
		if len(rec.Wire) > 0 {
			f.Add(rec.Wire)
		}
	}
	f.Add([]byte{0x53, 0x4c, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, msg, n, err := protocol.Decode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := protocol.Encode(nil, seq, msg)
		seq2, msg2, n2, err := protocol.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %v failed to decode: %v", msg.Type(), err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if seq2 != seq {
			t.Fatalf("seq round trip: %d != %d", seq2, seq)
		}
		if !reflect.DeepEqual(msg, msg2) {
			t.Fatalf("%v message round trip mismatch:\n first: %#v\nsecond: %#v",
				msg.Type(), msg, msg2)
		}
	})
}
