// Package protocol defines the SLIM wire protocol: the five display
// commands of Table 1 (SET, BITMAP, FILL, COPY, CSCS), input and audio
// messages, and the status/session control messages described in §2.2 of
// the paper. The protocol is deliberately low level — raw pixel data with
// simple redundancy encodings — so that a console is nothing more than a
// network-attached frame buffer.
//
// Every message carries a unique, monotonically increasing sequence number
// and is idempotent, so messages can be replayed with no ill effects and the
// protocol needs no reliable transport (the Sun Ray 1 used UDP; so do we).
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic bytes identify a SLIM datagram; Version is the wire revision.
const (
	Magic   = 0x534C // "SL"
	Version = 1
)

// HeaderSize is the length of the fixed datagram header:
// magic(2) version(1) type(1) seq(4) bodyLen(4).
const HeaderSize = 12

// MsgType identifies the payload carried by a datagram.
type MsgType uint8

// Display command types (server → console).
const (
	TypeSet MsgType = iota + 1
	TypeBitmap
	TypeFill
	TypeCopy
	TypeCSCS
	// Input events (console → server).
	TypeKey
	TypePointer
	// Audio (server → console).
	TypeAudio
	// Status and flow control.
	TypeHello
	TypeHelloAck
	TypeStatus
	TypeNack
	TypeBandwidthRequest
	TypeBandwidthGrant
	// Session management.
	TypeSessionConnect
	TypeSessionAttach
	TypeSessionDetach
	// Liveness.
	TypePing
	TypePong
	// Peripheral (remote device manager) traffic.
	TypeDevice
	// Gen-2 codec display command (server → console, negotiated at
	// attach via the Hello capability bits): paint a cached tile.
	TypeCachePaint

	maxMsgType
)

var typeNames = map[MsgType]string{
	TypeSet:              "SET",
	TypeBitmap:           "BITMAP",
	TypeFill:             "FILL",
	TypeCopy:             "COPY",
	TypeCSCS:             "CSCS",
	TypeKey:              "KEY",
	TypePointer:          "POINTER",
	TypeAudio:            "AUDIO",
	TypeHello:            "HELLO",
	TypeHelloAck:         "HELLO_ACK",
	TypeStatus:           "STATUS",
	TypeNack:             "NACK",
	TypeBandwidthRequest: "BW_REQUEST",
	TypeBandwidthGrant:   "BW_GRANT",
	TypeSessionConnect:   "SESSION_CONNECT",
	TypeSessionAttach:    "SESSION_ATTACH",
	TypeSessionDetach:    "SESSION_DETACH",
	TypePing:             "PING",
	TypePong:             "PONG",
	TypeDevice:           "DEVICE",
	TypeCachePaint:       "CACHE_PAINT",
}

// String returns the human-readable command name used in the paper.
func (t MsgType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// IsDisplay reports whether t is a display command: one of the five
// Table 1 commands, or the negotiated gen-2 CACHE_PAINT. Display
// commands mutate the console's frame buffer and participate in
// sequence-gap tracking and NACK recovery.
func (t MsgType) IsDisplay() bool {
	return (t >= TypeSet && t <= TypeCSCS) || t == TypeCachePaint
}

// Message is any SLIM protocol message. Marshal appends the body (not the
// header) to dst; BodyLen reports the body length without marshalling so
// bandwidth accounting is allocation free.
type Message interface {
	Type() MsgType
	BodyLen() int
	MarshalBody(dst []byte) []byte
	UnmarshalBody(src []byte) error
}

// Wire errors.
var (
	ErrBadMagic    = errors.New("protocol: bad magic")
	ErrBadVersion  = errors.New("protocol: unsupported version")
	ErrShort       = errors.New("protocol: short datagram")
	ErrBadType     = errors.New("protocol: unknown message type")
	ErrBodyLen     = errors.New("protocol: body length mismatch")
	ErrBadGeometry = errors.New("protocol: invalid rectangle geometry")
)

// Rect is a rectangular screen region. SLIM commands all operate on
// rectangles; coordinates are in pixels with the origin at the top left.
type Rect struct {
	X, Y, W, H int
}

// Empty reports whether the rectangle covers no pixels.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Pixels reports the number of pixels covered.
func (r Rect) Pixels() int {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// Valid reports whether the rectangle has non-negative origin and positive
// extent and fits in the 16-bit wire fields.
func (r Rect) Valid() bool {
	return r.X >= 0 && r.Y >= 0 && r.W > 0 && r.H > 0 &&
		r.X <= 0xffff && r.Y <= 0xffff && r.W <= 0xffff && r.H <= 0xffff
}

// Intersect returns the intersection of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	x1 := max(r.X, o.X)
	y1 := max(r.Y, o.Y)
	x2 := min(r.X+r.W, o.X+o.W)
	y2 := min(r.Y+r.H, o.Y+o.H)
	if x2 <= x1 || y2 <= y1 {
		return Rect{}
	}
	return Rect{X: x1, Y: y1, W: x2 - x1, H: y2 - y1}
}

// Contains reports whether o lies entirely inside r.
func (r Rect) Contains(o Rect) bool {
	if o.Empty() {
		return true
	}
	return o.X >= r.X && o.Y >= r.Y && o.X+o.W <= r.X+r.W && o.Y+o.H <= r.Y+r.H
}

func (r Rect) String() string {
	return fmt.Sprintf("%dx%d+%d+%d", r.W, r.H, r.X, r.Y)
}

func putRect(dst []byte, r Rect) []byte {
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:], uint16(r.X))
	binary.BigEndian.PutUint16(b[2:], uint16(r.Y))
	binary.BigEndian.PutUint16(b[4:], uint16(r.W))
	binary.BigEndian.PutUint16(b[6:], uint16(r.H))
	return append(dst, b[:]...)
}

func getRect(src []byte) (Rect, []byte, error) {
	if len(src) < 8 {
		return Rect{}, nil, ErrShort
	}
	r := Rect{
		X: int(binary.BigEndian.Uint16(src[0:])),
		Y: int(binary.BigEndian.Uint16(src[2:])),
		W: int(binary.BigEndian.Uint16(src[4:])),
		H: int(binary.BigEndian.Uint16(src[6:])),
	}
	return r, src[8:], nil
}

// Pixel is a 24-bit RGB pixel in 0xRRGGBB form. The SLIM wire format packs
// pixels as 3 bytes; consoles expand them to the frame buffer's native
// 4-byte format (which is what gives SET its high per-pixel cost in
// Table 5).
type Pixel uint32

// RGB assembles a pixel from 8-bit components.
func RGB(r, g, b uint8) Pixel {
	return Pixel(uint32(r)<<16 | uint32(g)<<8 | uint32(b))
}

// R, G and B extract the 8-bit colour components.
func (p Pixel) R() uint8 { return uint8(p >> 16) }
func (p Pixel) G() uint8 { return uint8(p >> 8) }
func (p Pixel) B() uint8 { return uint8(p) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
