package protocol

import (
	"bytes"
	"reflect"
	"testing"
)

// Native fuzz targets (run continuously with `go test -fuzz=FuzzX`; the
// seed corpus below always runs under plain `go test`). The decoder is the
// console's attack surface: it must never panic or over-read, whatever the
// fabric delivers.

func FuzzDecode(f *testing.F) {
	for _, msg := range sampleMessages() {
		f.Add(Encode(nil, 7, msg))
	}
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x4c})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, msg, n, err := Decode(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Valid decodes must re-encode to the identical prefix.
		re := Encode(nil, seq, msg)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch (%v)", msg.Type())
		}
	})
}

func FuzzDecodeBatch(f *testing.F) {
	fill := &Fill{Rect: Rect{W: 2, H: 2}, Color: 9}
	seed, _ := EncodeBatch(nil, []uint32{3, 4}, []Message{fill, fill})
	f.Add(seed)
	f.Add([]byte{0x53, 0x42, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		seqs, msgs, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if len(seqs) != len(msgs) {
			t.Fatal("seq/msg count mismatch")
		}
		// The encoder rebases batches to seqs[0], so byte-for-byte
		// round-tripping is not guaranteed; semantic round-tripping is.
		re, err := EncodeBatch(nil, seqs, msgs)
		if err != nil {
			t.Fatalf("valid batch failed to re-encode: %v", err)
		}
		seqs2, msgs2, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if !reflect.DeepEqual(seqs, seqs2) || !reflect.DeepEqual(msgs, msgs2) {
			t.Fatal("batch semantic round-trip mismatch")
		}
	})
}
