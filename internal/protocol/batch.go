package protocol

import (
	"encoding/binary"
	"fmt"
)

// Batched framing. §5.4 observes that the SLIM protocol was not designed
// for low-bandwidth links and that "optimizations like header compression
// and batching of command packets could have a dramatic effect." This file
// implements both: several messages share one datagram, and each batched
// message carries a 4-byte compact header (type, sequence delta, body
// length) instead of the full 12-byte header — on top of saving the
// ~42 bytes of UDP/IP/Ethernet framing per message.

// BatchMagic identifies a batched datagram ("SB").
const BatchMagic = 0x5342

// batchHeaderSize is the outer header: magic(2) version(1) count(1)
// baseSeq(4).
const batchHeaderSize = 8

// compactHeaderSize is the per-message header inside a batch: type(1)
// seqDelta(1) bodyLen(2).
const compactHeaderSize = 4

// maxCompactBody bounds a batched message body (uint16 length field).
const maxCompactBody = 0xffff

// ErrBatchOverflow reports a message that cannot be expressed in compact
// form (body too large or sequence delta beyond 255).
var ErrBatchOverflow = fmt.Errorf("protocol: message does not fit batch framing")

// EncodeBatch frames messages msgs with sequence numbers seqs into one
// batched datagram appended to dst. All sequence numbers must lie within
// 255 of the smallest (the batch rebases on it).
func EncodeBatch(dst []byte, seqs []uint32, msgs []Message) ([]byte, error) {
	if len(msgs) == 0 || len(msgs) > 255 {
		return nil, fmt.Errorf("protocol: batch of %d messages", len(msgs))
	}
	if len(seqs) != len(msgs) {
		return nil, fmt.Errorf("protocol: %d seqs for %d messages", len(seqs), len(msgs))
	}
	base := seqs[0]
	for _, s := range seqs[1:] {
		if s < base {
			base = s
		}
	}
	var hdr [batchHeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:], BatchMagic)
	hdr[2] = Version
	hdr[3] = byte(len(msgs))
	binary.BigEndian.PutUint32(hdr[4:], base)
	dst = append(dst, hdr[:]...)
	for i, m := range msgs {
		if seqs[i] < base || seqs[i]-base > 255 {
			return nil, fmt.Errorf("%w: seq delta %d", ErrBatchOverflow, int64(seqs[i])-int64(base))
		}
		body := m.BodyLen()
		if body > maxCompactBody {
			return nil, fmt.Errorf("%w: body %d bytes", ErrBatchOverflow, body)
		}
		var ch [compactHeaderSize]byte
		ch[0] = byte(m.Type())
		ch[1] = byte(seqs[i] - base)
		binary.BigEndian.PutUint16(ch[2:], uint16(body))
		dst = append(dst, ch[:]...)
		dst = m.MarshalBody(dst)
	}
	return dst, nil
}

// BatchWireSize reports the batched size of the given messages without
// encoding them.
func BatchWireSize(msgs []Message) int {
	n := batchHeaderSize
	for _, m := range msgs {
		n += compactHeaderSize + m.BodyLen()
	}
	return n
}

// IsBatch reports whether a datagram uses batched framing.
func IsBatch(src []byte) bool {
	return len(src) >= 2 && binary.BigEndian.Uint16(src) == BatchMagic
}

// DecodeBatch parses a batched datagram into its messages and sequence
// numbers.
func DecodeBatch(src []byte) ([]uint32, []Message, error) {
	if len(src) < batchHeaderSize {
		return nil, nil, ErrShort
	}
	if binary.BigEndian.Uint16(src[0:]) != BatchMagic {
		return nil, nil, ErrBadMagic
	}
	if src[2] != Version {
		return nil, nil, ErrBadVersion
	}
	count := int(src[3])
	if count == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", ErrBodyLen)
	}
	base := binary.BigEndian.Uint32(src[4:])
	src = src[batchHeaderSize:]
	seqs := make([]uint32, 0, count)
	msgs := make([]Message, 0, count)
	for i := 0; i < count; i++ {
		if len(src) < compactHeaderSize {
			return nil, nil, ErrShort
		}
		t := MsgType(src[0])
		delta := uint32(src[1])
		if base+delta < base {
			// Sequence space wraparound: a session never issues 2^32
			// commands, so this is a malformed datagram.
			return nil, nil, fmt.Errorf("%w: sequence overflow", ErrBodyLen)
		}
		bodyLen := int(binary.BigEndian.Uint16(src[2:]))
		src = src[compactHeaderSize:]
		if len(src) < bodyLen {
			return nil, nil, ErrShort
		}
		msg, err := newMessage(t)
		if err != nil {
			return nil, nil, err
		}
		if err := msg.UnmarshalBody(src[:bodyLen]); err != nil {
			return nil, nil, err
		}
		src = src[bodyLen:]
		seqs = append(seqs, base+delta)
		msgs = append(msgs, msg)
	}
	if len(src) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrBodyLen, len(src))
	}
	return seqs, msgs, nil
}

// DecodeAny parses either framing: a batched datagram yields all its
// messages, a plain datagram yields one.
func DecodeAny(src []byte) ([]uint32, []Message, error) {
	if IsBatch(src) {
		return DecodeBatch(src)
	}
	seq, msg, _, err := Decode(src)
	if err != nil {
		return nil, nil, err
	}
	return []uint32{seq}, []Message{msg}, nil
}
