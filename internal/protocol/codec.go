package protocol

import (
	"encoding/binary"
	"fmt"
)

// Encode frames msg into a complete datagram with the given sequence
// number, appending to dst (which may be nil).
func Encode(dst []byte, seq uint32, msg Message) []byte {
	body := msg.BodyLen()
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint16(hdr[0:], Magic)
	hdr[2] = Version
	hdr[3] = byte(msg.Type())
	binary.BigEndian.PutUint32(hdr[4:], seq)
	binary.BigEndian.PutUint32(hdr[8:], uint32(body))
	dst = append(dst, hdr[:]...)
	dst = msg.MarshalBody(dst)
	return dst
}

// WireSize reports the full datagram size of msg including the header.
// Bandwidth accounting throughout the experiments uses this value.
func WireSize(msg Message) int { return HeaderSize + msg.BodyLen() }

// newMessage allocates the zero value for a message type.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeSet:
		return &Set{}, nil
	case TypeBitmap:
		return &Bitmap{}, nil
	case TypeFill:
		return &Fill{}, nil
	case TypeCopy:
		return &Copy{}, nil
	case TypeCSCS:
		return &CSCS{}, nil
	case TypeKey:
		return &KeyEvent{}, nil
	case TypePointer:
		return &PointerEvent{}, nil
	case TypeAudio:
		return &Audio{}, nil
	case TypeHello:
		return &Hello{}, nil
	case TypeHelloAck:
		return &HelloAck{}, nil
	case TypeStatus:
		return &Status{}, nil
	case TypeNack:
		return &Nack{}, nil
	case TypeBandwidthRequest:
		return &BandwidthRequest{}, nil
	case TypeBandwidthGrant:
		return &BandwidthGrant{}, nil
	case TypeSessionConnect:
		return &SessionConnect{}, nil
	case TypeSessionAttach:
		return &SessionAttach{}, nil
	case TypeSessionDetach:
		return &SessionDetach{}, nil
	case TypePing:
		return &Ping{}, nil
	case TypePong:
		return &Pong{}, nil
	case TypeDevice:
		return &Device{}, nil
	case TypeCachePaint:
		return &CachePaint{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
}

// Decode parses one complete datagram. It returns the sequence number, the
// decoded message, and the number of bytes consumed, allowing several
// datagrams to be batched back to back in one packet (§5.4 mentions
// batching of command packets as an optimization; our transport does it).
func Decode(src []byte) (seq uint32, msg Message, n int, err error) {
	if len(src) < HeaderSize {
		return 0, nil, 0, ErrShort
	}
	if binary.BigEndian.Uint16(src[0:]) != Magic {
		return 0, nil, 0, ErrBadMagic
	}
	if src[2] != Version {
		return 0, nil, 0, ErrBadVersion
	}
	t := MsgType(src[3])
	seq = binary.BigEndian.Uint32(src[4:])
	bodyLen := int(binary.BigEndian.Uint32(src[8:]))
	if bodyLen < 0 || len(src) < HeaderSize+bodyLen {
		return 0, nil, 0, ErrShort
	}
	msg, err = newMessage(t)
	if err != nil {
		return 0, nil, 0, err
	}
	if err := msg.UnmarshalBody(src[HeaderSize : HeaderSize+bodyLen]); err != nil {
		return 0, nil, 0, err
	}
	return seq, msg, HeaderSize + bodyLen, nil
}

// DecodeAll parses every datagram in a batched packet.
func DecodeAll(src []byte) ([]Message, []uint32, error) {
	var msgs []Message
	var seqs []uint32
	for len(src) > 0 {
		seq, msg, n, err := Decode(src)
		if err != nil {
			return msgs, seqs, err
		}
		msgs = append(msgs, msg)
		seqs = append(seqs, seq)
		src = src[n:]
	}
	return msgs, seqs, nil
}

// Sequencer hands out the monotonically increasing sequence numbers that
// make SLIM messages replayable and loss detectable. It is not safe for
// concurrent use; each session owns one.
type Sequencer struct {
	next uint32
}

// Next returns the next sequence number, starting at 1 (0 means "none").
func (s *Sequencer) Next() uint32 {
	s.next++
	return s.next
}

// Current returns the most recently issued sequence number.
func (s *Sequencer) Current() uint32 { return s.next }

// Reserve claims a contiguous block of n sequence numbers and returns the
// first. The parallel encoder reserves a block up front so workers can
// marshal datagrams out of order while the emitted sequence stays exactly
// what the serial encoder would have produced.
func (s *Sequencer) Reserve(n int) uint32 {
	first := s.next + 1
	s.next += uint32(n)
	return first
}

// Resume continues numbering after last, as if last had just been issued.
// Session migration uses it: a session keeps its ID across servers, so the
// receiving server's sequencer must pick up exactly where the sender's
// stopped or the console's gap tracker would see the stream jump backwards.
func (s *Sequencer) Resume(last uint32) { s.next = last }

// GapTracker watches arriving sequence numbers on the console side and
// reports contiguous gaps so the console can issue a Nack. Out-of-order
// arrival within a small reorder window is tolerated without a Nack, as
// reordering is uncommon on a dedicated switched fabric (§2.2).
type GapTracker struct {
	// ReorderWindow is how far past a gap we let delivery run before
	// declaring the gap a loss.
	ReorderWindow uint32

	highest uint32
	primed  bool
	pending map[uint32]bool // sequence numbers seen beyond a gap
}

// NewGapTracker returns a tracker with the given reorder window.
func NewGapTracker(window uint32) *GapTracker {
	return &GapTracker{ReorderWindow: window, pending: make(map[uint32]bool)}
}

// Observe records the arrival of sequence number seq and returns any
// sequence ranges now considered lost. The first observation primes the
// tracker: a session's numbering continues across console moves, so a
// freshly attached console takes whatever it sees first as its baseline.
func (g *GapTracker) Observe(seq uint32) []Nack {
	if !g.primed {
		g.primed = true
		g.highest = seq
		return nil
	}
	if seq <= g.highest {
		delete(g.pending, seq)
		return nil
	}
	var nacks []Nack
	if seq == g.highest+1 {
		g.highest = seq
		// Absorb any pending successors.
		for g.pending[g.highest+1] {
			delete(g.pending, g.highest+1)
			g.highest++
		}
		return nil
	}
	// There is a gap between highest and seq.
	g.pending[seq] = true
	if seq-g.highest > g.ReorderWindow {
		// Declare everything in (highest, seq) that has not arrived lost.
		var from, to uint32
		inRun := false
		for s := g.highest + 1; s < seq; s++ {
			if g.pending[s] {
				if inRun {
					nacks = append(nacks, Nack{From: from, To: to})
					inRun = false
				}
				continue
			}
			if !inRun {
				from, inRun = s, true
			}
			to = s
		}
		if inRun {
			nacks = append(nacks, Nack{From: from, To: to})
		}
		for s := g.highest + 1; s <= seq; s++ {
			delete(g.pending, s)
		}
		g.highest = seq
	}
	return nacks
}

// Highest returns the highest contiguously delivered sequence number.
func (g *GapTracker) Highest() uint32 { return g.highest }
