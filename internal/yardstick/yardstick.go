// Package yardstick defines the indirect benchmark applications of §3.1:
// probes with fixed, well-known resource demands whose measured latency
// under load gauges a shared system's interactive performance. The CPU
// yardstick (§6.1) is deliberately more demanding than any real benchmark
// application — it needs ~17% of a processor, above Photoshop's 14% — so a
// system that keeps the yardstick happy keeps every real application happy.
package yardstick

import (
	"time"

	"slim/internal/loadgen"
	"slim/internal/netsim"
	"slim/internal/sched"
	"slim/internal/stats"
)

// CPU yardstick parameters (§6.1): 30 ms of dedicated CPU to simulate event
// processing, followed by 150 ms of think time, i.e. an interrupt rate
// equivalent to a fast typist.
const (
	CPUService = 30 * time.Millisecond
	CPUThink   = 150 * time.Millisecond
)

// Network yardstick parameters (§6.2): a highly interactive user with
// sizeable display updates — a 64 B command packet upstream, a 1200 B
// response downstream, then 150 ms of think time.
const (
	NetUpBytes   = 64
	NetDownBytes = 1200
	NetThink     = 150 * time.Millisecond
)

// Perception thresholds from the paper: humans begin to notice delays in
// the 50–150 ms range (§4.1, citing Shneiderman); the authors found
// interactive performance noticeably poor when the CPU yardstick's added
// delay hit ~100 ms (§6.1) and the shared network unusable when the network
// yardstick's RTT hit ~30 ms (§6.2).
const (
	NoticeLow    = 50 * time.Millisecond
	NoticeHigh   = 150 * time.Millisecond
	CPUKneeAdded = 100 * time.Millisecond
	NetKneeRTT   = 30 * time.Millisecond
)

// NewCPU returns the CPU yardstick burst source.
func NewCPU() sched.Source {
	return &loadgen.FixedSource{Service: CPUService, Think: CPUThink, Mem: 8}
}

// NetProbe generates the network yardstick's downstream packets for a run
// of the given duration: one NetDownBytes response every NetThink plus the
// upstream/serialization time. Flow -1 marks yardstick traffic.
func NetProbe(dur time.Duration, seed uint64) []netsim.Packet {
	rng := stats.NewRNG(seed)
	var out []netsim.Packet
	t := time.Duration(rng.Range(0, float64(NetThink)))
	for t < dur {
		out = append(out, netsim.Packet{T: t, Size: NetDownBytes, Flow: -1})
		t += NetThink
	}
	return out
}

// NetRTTs extracts the yardstick's round-trip times from a shared-link
// simulation: upstream serialization plus each probe's downstream queueing
// and serialization (the server itself replies instantly, §6.2).
func NetRTTs(deliveries []netsim.Delivery, up, down *netsim.Link) (*stats.CDF, int) {
	rtts := stats.NewCDF(256)
	dropped := 0
	for _, d := range deliveries {
		if d.Flow != -1 {
			continue
		}
		if d.Dropped {
			dropped++
			continue
		}
		rtt := up.SerializeTime(NetUpBytes) + up.Prop + d.Queued + down.Prop
		rtts.Add(rtt.Seconds())
	}
	return rtts, dropped
}
