package yardstick

import (
	"testing"
	"time"

	"slim/internal/netsim"
)

func TestCPUYardstickShape(t *testing.T) {
	src := NewCPU()
	b, ok := src.Next()
	if !ok {
		t.Fatal("yardstick dry")
	}
	if b.Service != 30*time.Millisecond || b.Think != 150*time.Millisecond {
		t.Errorf("burst = %+v", b)
	}
	// §6.1: the yardstick demands ~17% of a processor, more than any
	// benchmark application's average.
	frac := float64(b.Service) / float64(b.Service+b.Think)
	if frac < 0.16 || frac > 0.17 {
		t.Errorf("duty cycle = %f, want ~1/6", frac)
	}
}

func TestNetProbeCadence(t *testing.T) {
	pkts := NetProbe(3*time.Second, 1)
	if len(pkts) < 18 || len(pkts) > 21 {
		t.Fatalf("probes in 3s = %d, want ~20", len(pkts))
	}
	for i, p := range pkts {
		if p.Flow != -1 || p.Size != NetDownBytes {
			t.Fatalf("probe %d = %+v", i, p)
		}
		if i > 0 && p.T-pkts[i-1].T != NetThink {
			t.Fatalf("cadence gap = %v", p.T-pkts[i-1].T)
		}
	}
}

func TestNetProbeSeedOffsets(t *testing.T) {
	a := NetProbe(time.Second, 1)
	b := NetProbe(time.Second, 2)
	if a[0].T == b[0].T {
		t.Error("different seeds share a phase")
	}
}

func TestNetRTTs(t *testing.T) {
	up := &netsim.Link{Bps: netsim.Rate100Mbps, Prop: 20 * time.Microsecond}
	down := &netsim.Link{Bps: netsim.Rate100Mbps, Prop: 20 * time.Microsecond}
	deliveries := []netsim.Delivery{
		{Packet: netsim.Packet{Flow: -1, Size: NetDownBytes}, Queued: time.Millisecond},
		{Packet: netsim.Packet{Flow: 0, Size: 1400}, Queued: time.Hour}, // background: ignored
		{Packet: netsim.Packet{Flow: -1, Size: NetDownBytes}, Dropped: true},
	}
	rtts, dropped := NetRTTs(deliveries, up, down)
	if rtts.N() != 1 || dropped != 1 {
		t.Fatalf("n=%d dropped=%d", rtts.N(), dropped)
	}
	want := up.SerializeTime(NetUpBytes) + up.Prop + time.Millisecond + down.Prop
	if got := time.Duration(rtts.Mean() * float64(time.Second)); got != want {
		t.Errorf("rtt = %v, want %v", got, want)
	}
}

func TestThresholdOrdering(t *testing.T) {
	if !(NetKneeRTT < NoticeLow && NoticeLow < CPUKneeAdded && CPUKneeAdded <= NoticeHigh) {
		t.Error("tolerance thresholds out of order")
	}
}
