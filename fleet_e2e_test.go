package slim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"slim/internal/netsim"
	"slim/internal/obs"
)

// meteredFabric wraps the in-process fabric and records the size of every
// datagram each console receives, so a soak can price repaint traffic over
// a modelled link in simulated time. Sends nest (console replies re-enter
// the broker synchronously) but never run concurrently in these tests, so
// plain map access is safe.
type meteredFabric struct {
	*Fabric
	sizes map[string][]int
}

func newMeteredFabric() *meteredFabric {
	return &meteredFabric{Fabric: NewFabric(), sizes: make(map[string][]int)}
}

func (m *meteredFabric) Send(console string, wire []byte) error {
	m.sizes[console] = append(m.sizes[console], len(wire))
	return m.Fabric.Send(console, wire)
}

// mark returns the console's current datagram count; simTime prices the
// datagrams delivered since a mark as one serialized burst over link.
func (m *meteredFabric) mark(console string) int { return len(m.sizes[console]) }

func (m *meteredFabric) simTime(console string, mark int, link netsim.Link) time.Duration {
	d := link.Prop
	for _, size := range m.sizes[console][mark:] {
		d += link.SerializeTime(size)
	}
	return d
}

// fleetLink is the soak's modelled console access link: 10 Mbit/s switched
// Ethernet with LAN propagation — an order of magnitude below the paper's
// 100 Mbit/s fabric, so the 2-second hotdesk budget is a real constraint,
// not a freebie.
var fleetLink = netsim.Link{Bps: 10_000_000, Prop: 2 * time.Millisecond}

// checkFleetParity asserts the broker's rollup gauges agree with live
// per-shard session counts — the no-leak invariant the soak ends on.
func checkFleetParity(t *testing.T, b *Broker, reg *obs.Registry) {
	t.Helper()
	b.Rollup()
	snap := reg.Snapshot()
	total := 0
	for i := 0; i < b.Shards(); i++ {
		n := b.Shard(i).SessionCount()
		total += n
		name := fmt.Sprintf(`slim_broker_shard_sessions{shard="%d"}`, i)
		if got := snap.Gauges[name]; got != int64(n) {
			t.Fatalf("shard %d rollup gauge = %d, live count = %d", i, got, n)
		}
	}
	if got := snap.Gauges["slim_broker_sessions"]; got != int64(total) {
		t.Fatalf("fleet rollup gauge = %d, live total = %d", got, total)
	}
	if got := b.Sessions(); got != total {
		t.Fatalf("Sessions() = %d, shards sum to %d", got, total)
	}
}

// TestFleetSoak is the tentpole acceptance run: 2,000 simulated consoles
// across 8 in-process shards behind one broker, hotdesk churn with every
// reattach priced over a modelled 10 Mbit/s console link, p99 reattach
// under 2 seconds of simulated time, and per-shard session parity (no
// leaked or double-counted sessions in the rollup) when the dust settles.
func TestFleetSoak(t *testing.T) {
	const (
		shards   = 8
		consoles = 2000
		hotdesks = 600
	)
	fabric := newMeteredFabric()
	reg := obs.NewRegistry(obs.DomainWall)
	b, err := NewBroker(context.Background(), BrokerConfig{
		Shards:  shards,
		Routing: RouteLeastLoaded,
	}, fabric, WithTerminalApp(), WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}

	// Boot the whole floor: every console registers, every user badges in
	// at their own desk.
	for i := 0; i < consoles; i++ {
		desk := fmt.Sprintf("desk-%04d", i)
		con, err := NewConsole(ConsoleConfig{Width: 64, Height: 48})
		if err != nil {
			t.Fatal(err)
		}
		fabric.Attach(desk, con, b)
		tok := MustIssueToken()
		b.Register(tok, fmt.Sprintf("user-%04d", i))
		if err := fabric.Boot(desk, tok.String()); err != nil {
			t.Fatalf("boot %s: %v", desk, err)
		}
	}
	if got := b.Sessions(); got != consoles {
		t.Fatalf("boot created %d sessions, want %d", got, consoles)
	}
	// Least-loaded placement keeps the fleet level: the occupancy spread
	// across shards can be at most 1 after round-robin-like filling.
	minN, maxN := consoles, 0
	for i := 0; i < shards; i++ {
		n := b.Shard(i).SessionCount()
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if maxN-minN > 1 {
		t.Fatalf("least-loaded boot placement skewed: min %d max %d", minN, maxN)
	}

	// Carve a hole in the fleet: everyone on shards 0 and 1 logs out for
	// the day. The survivors' shards now exceed the empty ones by well over
	// the migration slack, so the coming hotdesk churn must rebalance live.
	terminated := 0
	for i := 0; i < consoles; i++ {
		user := fmt.Sprintf("user-%04d", i)
		if shard, ok := b.Locate(user); ok && shard < 2 {
			if err := b.Terminate(user); err != nil {
				t.Fatalf("terminate %s: %v", user, err)
			}
			terminated++
		}
	}
	checkFleetParity(t, b, reg)

	// Hotdesk churn: users badge in at other desks; each reattach's repaint
	// traffic — including any migration's — is priced over the modelled
	// link. Cards are re-issuable lookups, so keep them addressable by
	// user index.
	tokens := make([]Token, consoles)
	for i := range tokens {
		tokens[i] = MustIssueToken()
		b.Register(tokens[i], fmt.Sprintf("user-%04d", i))
	}
	rng := rand.New(rand.NewSource(1999))
	reattach := make([]time.Duration, 0, hotdesks)
	for n := 0; n < hotdesks; n++ {
		u := rng.Intn(consoles)
		desk := fmt.Sprintf("desk-%04d", rng.Intn(consoles))
		mark := fabric.mark(desk)
		if err := fabric.InsertCard(desk, tokens[u].String()); err != nil {
			t.Fatalf("hotdesk %d: %v", n, err)
		}
		reattach = append(reattach, fabric.simTime(desk, mark, fleetLink))
	}
	sort.Slice(reattach, func(i, j int) bool { return reattach[i] < reattach[j] })
	p50 := reattach[len(reattach)/2]
	p99 := reattach[len(reattach)*99/100]
	migrations := reg.Snapshot().Counters["slim_broker_migrations_total"]
	t.Logf("fleet soak: %d consoles, %d shards, %d hotdesks, %d terminated, %d migrations; reattach p50 %v p99 %v (sim)",
		consoles, shards, hotdesks, terminated, migrations, p50, p99)
	if p99 >= 2*time.Second {
		t.Fatalf("reattach p99 = %v sim-time, want < 2s (§1.1 hotdesk budget)", p99)
	}
	if migrations == 0 {
		t.Fatal("skewed churn triggered no rebalancing migrations")
	}

	// Post-soak parity: every remaining session counted exactly once in
	// the rollup, nothing leaked or double-counted after the migrations.
	checkFleetParity(t, b, reg)
}

// TestFleetSmoke is the CI-sized fleet check (make fleet-smoke): a 2-shard
// broker over the fabric, a short hotdesk soak, one forced live migration,
// and the reattach latency asserted against the 2-second budget. It also
// pins the console-transparency details the full soak is too big to eyeball:
// pixel-identical screens and a stable session ID across the migration.
func TestFleetSmoke(t *testing.T) {
	fabric := newMeteredFabric()
	reg := obs.NewRegistry(obs.DomainWall)
	b, err := NewBroker(context.Background(), BrokerConfig{
		Shards:  2,
		Routing: RouteLeastLoaded,
	}, fabric, WithTerminalApp(), WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	cons := map[string]*Console{}
	for i := 0; i < 4; i++ {
		desk := fmt.Sprintf("desk-%d", i)
		con, err := NewConsole(ConsoleConfig{Width: 96, Height: 64})
		if err != nil {
			t.Fatal(err)
		}
		cons[desk] = con
		fabric.Attach(desk, con, b)
		if err := fabric.Boot(desk, ""); err != nil {
			t.Fatal(err)
		}
	}
	alice, bob := TokenOf("card-alice"), TokenOf("card-bob")
	b.Register(alice, "alice")
	b.Register(bob, "bob")
	if err := fabric.InsertCard("desk-0", alice.String()); err != nil {
		t.Fatal(err)
	}
	if err := fabric.InsertCard("desk-1", bob.String()); err != nil {
		t.Fatal(err)
	}
	if err := fabric.TypeString("desk-0", "state that must survive\n"); err != nil {
		t.Fatal(err)
	}

	// Hotdesk alice to desk-2 under the latency budget.
	mark := fabric.mark("desk-2")
	if err := fabric.InsertCard("desk-2", alice.String()); err != nil {
		t.Fatal(err)
	}
	if d := fabric.simTime("desk-2", mark, fleetLink); d >= 2*time.Second {
		t.Fatalf("hotdesk reattach = %v sim-time, want < 2s", d)
	}
	sess := b.SessionByUser("alice")
	if sess == nil || sess.Console != "desk-2" {
		t.Fatalf("hotdesk did not move alice's display: %+v", sess)
	}
	idBefore := sess.ID
	homeBefore, _ := b.Locate("alice")

	// Force one live migration to the other shard and re-check everything
	// the console is supposed to never notice.
	mark = fabric.mark("desk-2")
	if err := b.MigrateUser("alice", 1-homeBefore, fabric.Now()); err != nil {
		t.Fatal(err)
	}
	if d := fabric.simTime("desk-2", mark, fleetLink); d >= 2*time.Second {
		t.Fatalf("migration redirect = %v sim-time, want < 2s", d)
	}
	if got, _ := b.Locate("alice"); got != 1-homeBefore {
		t.Fatalf("migration left alice on shard %d", got)
	}
	sess = b.SessionByUser("alice")
	if sess.ID != idBefore {
		t.Fatalf("migration changed session ID %d -> %d (console would reset its gap tracker)",
			idBefore, sess.ID)
	}
	if sess.Console != "desk-2" {
		t.Fatalf("console did not follow migration: %q", sess.Console)
	}
	if !cons["desk-2"].Framebuffer().Equal(sess.Encoder.FB) {
		t.Fatal("console screen diverged from migrated session")
	}
	// The session still works where it landed.
	if err := fabric.TypeString("desk-2", "still alive"); err != nil {
		t.Fatal(err)
	}
	if !cons["desk-2"].Framebuffer().Equal(sess.Encoder.FB) {
		t.Fatal("post-migration input diverged console from session")
	}
	if got := reg.Snapshot().Counters["slim_broker_migrations_total"]; got != 1 {
		t.Fatalf("migrations = %d, want exactly 1 (the forced one)", got)
	}
	checkFleetParity(t, b, reg)
}
