package slim

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"slim/internal/obs"
)

// TestInputToPaintEndToEnd drives a real session over the in-process
// fabric against a fresh registry and checks the paper's headline quantity
// — input-to-paint latency — comes out live and nonzero. On the fabric
// transport delivery is synchronous, so the span covers the full path:
// input dispatch, app update, encode, wire, console decode, damage flush.
func TestInputToPaintEndToEnd(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	fabric := NewFabric()
	srv := NewServer(fabric, WithTerminalApp()).Instrument(reg)
	srv.Auth.Register("card-alice", "alice")

	con, err := NewConsole(ConsoleConfig{Width: 320, Height: 240, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk-1", con, srv)
	if err := fabric.Boot("desk-1", "card-alice"); err != nil {
		t.Fatal(err)
	}
	const typed = "interactive"
	if err := fabric.TypeString("desk-1", typed); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()

	// Every keystroke is press + release.
	wantEvents := int64(2 * len(typed))
	if got := snap.Counters["slim_input_events_total"]; got != wantEvents {
		t.Errorf("input events = %d, want %d", got, wantEvents)
	}

	itp := snap.Histograms["slim_input_to_paint_seconds"]
	if itp.Count != wantEvents {
		t.Fatalf("input-to-paint count = %d, want %d", itp.Count, wantEvents)
	}
	if itp.P50 <= 0 || itp.P95 <= 0 || itp.P99 <= 0 {
		t.Errorf("input-to-paint percentiles not populated: p50=%g p95=%g p99=%g",
			itp.P50, itp.P95, itp.P99)
	}
	// In-process delivery must land far under the paper's 20 ms
	// instantaneous-perception threshold.
	if itp.P99 > 0.020 {
		t.Errorf("in-process input-to-paint p99 = %gs, want <20ms", itp.P99)
	}

	// The per-session histogram mirrors the global one.
	perSession := snap.Histograms[`slim_input_to_paint_seconds{session="alice"}`]
	if perSession.Count != wantEvents {
		t.Errorf("per-session count = %d, want %d", perSession.Count, wantEvents)
	}
	sess := srv.SessionByUser("alice")
	if sess.InputToPaint() == nil || sess.InputToPaint().Count() != wantEvents {
		t.Errorf("Session.InputToPaint not wired")
	}

	// The surrounding pipeline published too: encoder commands and bytes,
	// console applies, decode timings, session gauge.
	if snap.CounterSum("slim_encoder_commands_total") == 0 {
		t.Error("encoder command counters empty")
	}
	if snap.CounterSum("slim_encoder_wire_bytes_total") == 0 {
		t.Error("encoder wire byte counters empty")
	}
	if snap.Counters["slim_console_applied_total"] == 0 {
		t.Error("console applied counter empty")
	}
	if snap.Histograms["slim_console_decode_seconds"].Count == 0 {
		t.Error("console decode histogram empty")
	}
	if snap.Histograms["slim_encode_seconds"].Count == 0 {
		t.Error("encode histogram empty")
	}
	if got := snap.Gauges["slim_sessions"]; got != 1 {
		t.Errorf("sessions gauge = %d, want 1", got)
	}
	if got := snap.Counters["slim_session_attaches_total"]; got != 1 {
		t.Errorf("attaches = %d, want 1", got)
	}
}

// TestDebugHandlerExposesLiveTraffic drives the default-registry path (as
// slimd does) and scrapes the facade's debug handler.
func TestDebugHandlerExposesLiveTraffic(t *testing.T) {
	fabric, srv := newFabricSystem(t)
	attachConsole(t, fabric, srv, "desk-1", "card-alice")
	if err := fabric.TypeString("desk-1", "x"); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(DebugHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{
		"slim_input_to_paint_seconds_bucket",
		"slim_input_to_paint_seconds_count",
		"slim_sessions",
		"slim_encoder_commands_total",
		"slim_fabric_delivered_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if Metrics().Domain() != obs.DomainWall || SimMetrics().Domain() != obs.DomainSim {
		t.Error("facade registries report wrong domains")
	}
}

// TestUDPServerCloseJoinsServeGoroutine is the regression test for the
// serve-goroutine leak: Close must not return before the background reader
// has exited, and a second Close must be a clean no-op. The wait is what
// failed before — Close used to orphan the goroutine blocked in
// ReadFromUDP.
func TestUDPServerCloseJoinsServeGoroutine(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", WithTerminalApp())
	if err != nil {
		t.Fatal(err)
	}
	// The serve goroutine is parked in ReadFromUDP with no traffic — the
	// exact state that leaked.
	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not join the serve goroutine")
	}
	// Idempotent: a second Close also waits (instantly) and succeeds.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestUDPConsoleCloseJoinsServeGoroutine: same contract on the client side.
func TestUDPConsoleCloseJoinsServeGoroutine(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", WithTerminalApp())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Server.Auth.Register("card-u", "udpuser")
	con, err := DialConsole(srv.Addr().String(), ConsoleConfig{Width: 320, Height: 240}, TokenOf("card-u"))
	if err != nil {
		t.Fatal(err)
	}
	closeDone := make(chan error, 1)
	go func() { closeDone <- con.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("console Close did not join the serve goroutine")
	}
	if err := con.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
