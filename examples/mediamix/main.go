// Mediamix: the §7 scenario end to end — a console playing synchronized
// video and audio while the bandwidth allocator keeps a GUI session
// responsive.
//
// Ten seconds of 320x240 game video at 5 bpp stream to the console with
// CD-quality PCM audio in 10 ms blocks. The console's jitter buffer
// absorbs network jitter (no underruns on a dedicated fabric), and the §7
// sorted-grant allocator shows why a video stream cannot starve the GUI.
package main

import (
	"fmt"
	"log"
	"time"

	"slim"
	"slim/internal/audio"
	"slim/internal/console"
	"slim/internal/core"
	"slim/internal/netsim"
	"slim/internal/protocol"
	"slim/internal/video"
)

func main() {
	log.SetFlags(0)

	con, err := console.New(console.Config{
		Width: 640, Height: 480,
		AudioBuffer: 40 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Media pipeline: game frames at 25 Hz plus audio blocks every 10 ms.
	src := video.NewQuake(320, 240, 11)
	enc := slim.NewEncoder(640, 480)
	var audioSeq protocol.Sequencer
	streamer := audio.NewStreamer(audio.NewTone(440), &audioSeq)
	link := &netsim.Link{Bps: netsim.Rate100Mbps, Prop: 20 * time.Microsecond}

	const seconds = 10
	const fps = 25
	frameGap := time.Second / fps
	var videoBytes, audioBytes int64
	now := time.Duration(0)

	for f := 0; f < seconds*fps; f++ {
		// Video frame → CSCS strips → console.
		frame := src.Next()
		dgs, err := enc.Encode(core.VideoOp{
			Src:    protocol.Rect{W: 320, H: 240},
			Dst:    protocol.Rect{X: 160, Y: 120, W: 320, H: 240},
			Format: slim.CSCS5,
			Pixels: frame.Pixels,
		})
		if err != nil {
			log.Fatal(err)
		}
		t := now
		for _, d := range dgs {
			t += link.SerializeTime(len(d.Wire))
			if _, err := con.HandleDatagram(d.Wire, t); err != nil {
				log.Fatal(err)
			}
			videoBytes += int64(len(d.Wire))
		}
		// Audio blocks covering this frame interval, delivered with the
		// network's (tiny) jitter.
		for a := 0; a < int(frameGap/audio.BlockDuration); a++ {
			wire, _ := streamer.NextBlock()
			at := now + time.Duration(a)*audio.BlockDuration + link.SerializeTime(len(wire))
			if _, err := con.HandleDatagram(wire, at); err != nil {
				log.Fatal(err)
			}
			audioBytes += int64(len(wire))
		}
		now += frameGap
	}

	applied, dropped := con.Counters()
	received, underruns := con.AudioStats(now)
	fmt.Printf("streamed %ds of 320x240 video + CD audio to one console\n", seconds)
	fmt.Printf("video: %d commands applied (%d dropped), %.1f Mbps\n",
		applied, dropped, float64(videoBytes*8)/float64(seconds)/1e6)
	fmt.Printf("audio: %d blocks, %d underruns, %.2f Mbps\n",
		received, underruns, float64(audioBytes*8)/float64(seconds)/1e6)

	// The §7 allocator: video asks big, GUI asks small, GUI never starves.
	alloc := console.NewBandwidthAllocator(uint64(netsim.Rate100Mbps))
	alloc.Request(1, 2_000_000)  // GUI session
	alloc.Request(2, 60_000_000) // this video stream
	alloc.Request(3, 80_000_000) // a second, greedier stream
	fmt.Println("bandwidth grants (sorted-grant arbitration):")
	for _, g := range alloc.Grants() {
		fmt.Printf("  session %d: %.1f Mbps\n", g.SessionID, float64(g.Bps)/1e6)
	}
}
