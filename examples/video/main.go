// Video: stream synthetic MPEG-II-style frames to a console with the CSCS
// command (§7.1), exercising the real YUV encode → strip → decode →
// bilinear-scale path, then report what the 1999 hardware model says the
// same pipeline achieves on a Sun Ray 1.
package main

import (
	"fmt"
	"log"
	"os"

	"slim"
	"slim/internal/core"
	"slim/internal/fb"
	"slim/internal/netsim"
	"slim/internal/protocol"
	"slim/internal/video"
)

func main() {
	log.SetFlags(0)

	// Real data path: 64 frames of 720x480 video through the encoder into
	// a console frame buffer at 6 bits per pixel.
	src := video.NewMPEG2(2026)
	enc := slim.NewEncoder(1280, 1024)
	screen := fb.New(1280, 1024)
	dst := protocol.Rect{X: 280, Y: 272, W: 720, H: 480}
	hz, wire, err := video.Stream(src, enc, screen, dst, slim.CSCS6, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed 64 frames of 720x480 @ 6bpp on this host: %.1f fps, %.1f Mbps at 20 Hz\n",
		hz, float64(wire)/64*20*8/1e6)

	// Save the last frame for inspection.
	f, err := os.Create("video-frame.png")
	if err != nil {
		log.Fatal(err)
	}
	if err := screen.WritePNG(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("last frame written to video-frame.png")

	// The paper's question: on Sun Ray 1 hardware, where is the
	// bottleneck and what rate survives?
	pipe := video.Pipeline{
		SrcW: 720, SrcH: 480, DstW: 720, DstH: 480,
		Format:                 slim.CSCS6,
		ServerPerFrame:         video.MPEG2DecodeCost,
		Instances:              1,
		CPUs:                   8,
		LinkBps:                netsim.Rate100Mbps,
		Console:                core.SunRay1Costs(),
		ConsoleVideoEfficiency: video.DefaultConsoleVideoEfficiency,
		TargetHz:               30,
	}
	fmt.Printf("Sun Ray 1 model: %v (paper: 20 Hz, ~40 Mbps, server-bound)\n", pipe.Analyze())
}
