// Desktop: a complete windowed desktop on a stateless console. The window
// system (internal/wm) runs entirely server-side — stacking, backing
// stores, exposure — and the console still only ever sees the five SLIM
// commands. Overlap two windows, type into one, drag it away, and the
// exposed content comes back from the server's backing store, not from
// the console.
package main

import (
	"fmt"
	"log"
	"os"

	"slim"
	"slim/internal/core"
	"slim/internal/fb"
	"slim/internal/protocol"
	"slim/internal/server"
	"slim/internal/wm"
)

func main() {
	log.SetFlags(0)
	enc := slim.NewEncoder(800, 600)
	screen := fb.New(800, 600) // the console's soft state
	apply := func(ops []core.Op) {
		for _, op := range ops {
			dgs, err := enc.Encode(op)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range dgs {
				_, msg, _, err := protocol.Decode(d.Wire)
				if err != nil {
					log.Fatal(err)
				}
				if err := screen.Apply(msg); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	desk := wm.New(800, 600)
	apply(desk.InitOps())

	editor, ops, err := desk.Create(protocol.Rect{X: 60, Y: 60, W: 420, H: 320}, "editor")
	if err != nil {
		log.Fatal(err)
	}
	apply(ops)
	// Type a document into the editor via the glyph terminal.
	font := server.DefaultFont()
	typeText := func(win int, text string, row int) {
		col := 1
		var cliOps []core.Op
		for i := 0; i < len(text); i++ {
			if text[i] == '\n' {
				row, col = row+1, 1
				continue
			}
			cliOps = append(cliOps, core.TextOp{
				Rect: protocol.Rect{X: col * 8, Y: row * 16, W: 8, H: 16},
				Fg:   slim.RGB(20, 20, 40), Bg: slim.RGB(0xf2, 0xf2, 0xee),
				Bits: font.Glyph(text[i]),
			})
			col++
		}
		out, err := desk.Draw(win, cliOps)
		if err != nil {
			log.Fatal(err)
		}
		apply(out)
	}
	typeText(editor, "The desktop is an I/O device.\nState lives on the server.", 1)

	shell, ops, err := desk.Create(protocol.Rect{X: 260, Y: 200, W: 440, H: 300}, "shell")
	if err != nil {
		log.Fatal(err)
	}
	apply(ops)
	typeText(shell, "$ slimbench -run fig9\n(running...)", 1)

	// Drag the shell aside: a COPY moves it; the exposure repaints the
	// editor's hidden corner from its backing store.
	ops, err = desk.Move(shell, 180, 120)
	if err != nil {
		log.Fatal(err)
	}
	apply(ops)

	// Bring the editor forward.
	ops, err = desk.Raise(editor)
	if err != nil {
		log.Fatal(err)
	}
	apply(ops)

	f, err := os.Create("desktop.png")
	if err != nil {
		log.Fatal(err)
	}
	if err := screen.WritePNG(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("desktop rendered: %d windows, %d commands, %d wire bytes\n",
		len(desk.Windows()), enc.Stats.TotalCommands(), enc.Stats.TotalWireBytes())
	fmt.Printf("compression vs raw pixels: %.1fx\n", enc.Stats.CompressionFactor())
	fmt.Println("screenshot written to desktop.png")
}
