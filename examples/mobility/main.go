// Mobility: the SLIM hot-desking model (§1.1). Alice works at desk-1,
// pulls her smart card, walks to desk-2, and inserts it — "the screen is
// returned to the exact state at which it was left", because the console
// held only soft state and the server repaints from its persistent frame
// buffer.
package main

import (
	"fmt"
	"log"

	"slim"
)

func main() {
	log.SetFlags(0)
	fabric := slim.NewFabric()
	srv := slim.NewServer(fabric, slim.WithTerminalApp())
	srv.Auth.Register("card-alice", "alice")

	mkConsole := func(desk string) *slim.Console {
		con, err := slim.NewConsole(slim.ConsoleConfig{Width: 800, Height: 600})
		if err != nil {
			log.Fatal(err)
		}
		fabric.Attach(desk, con, srv)
		if err := fabric.Boot(desk, ""); err != nil {
			log.Fatal(err)
		}
		return con
	}
	desk1 := mkConsole("desk-1")
	desk2 := mkConsole("desk-2")

	// Morning: Alice badges in at desk-1 and works.
	if err := fabric.InsertCard("desk-1", "card-alice"); err != nil {
		log.Fatal(err)
	}
	if err := fabric.TypeString("desk-1", "draft: SLIM architecture notes\n"); err != nil {
		log.Fatal(err)
	}
	if err := fabric.TypeString("desk-1", "the desktop is an I/O device.\n"); err != nil {
		log.Fatal(err)
	}
	before := desk1.Framebuffer().Snapshot()
	fmt.Printf("desk-1 shows session %d\n", desk1.SessionID())

	// Afternoon: card out (soft state may be discarded at any time),
	// card in at desk-2.
	desk1.RemoveCard()
	if err := fabric.InsertCard("desk-2", "card-alice"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("desk-2 shows session %d\n", desk2.SessionID())

	// The session followed the card, and the screen is pixel-identical.
	if !desk2.Framebuffer().Equal(before) {
		log.Fatal("desk-2 did not restore the exact screen state")
	}
	fmt.Println("desk-2 restored the screen bit-for-bit; typing resumes mid-line:")
	if err := fabric.TypeString("desk-2", "resumed at another desk.\n"); err != nil {
		log.Fatal(err)
	}
	sess := srv.SessionByUser("alice")
	fmt.Printf("alice's session %d is now displayed on %q\n", sess.ID, sess.Console)
}
