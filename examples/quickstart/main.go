// Quickstart: a complete SLIM system in one process — a server running the
// glyph terminal, a stateless console on an in-process fabric, a smart
// card, some typing, and a PNG screenshot of the console's frame buffer.
package main

import (
	"fmt"
	"log"
	"os"

	"slim"
)

func main() {
	log.SetFlags(0)

	// The fabric is the dedicated interconnect; it doubles as the server's
	// transport (§2.1).
	fabric := slim.NewFabric()

	// One server, running the echo terminal as every session's app (§2.4).
	// Options configure the rest: the Sun Ray 1 decode cost model (Table 5)
	// and the grant-paced send governor (§7), so each session's traffic is
	// paced to whatever bandwidth its console grants.
	srv := slim.NewServer(fabric, slim.WithTerminalApp(),
		slim.WithCostModel(slim.SunRay1Costs()),
		slim.WithFlowControl(slim.FlowConfig{}))
	srv.Auth.Register("card-alice", "alice")

	// One stateless console at desk-1 (§2.3).
	con, err := slim.NewConsole(slim.ConsoleConfig{Width: 640, Height: 400})
	if err != nil {
		log.Fatal(err)
	}
	fabric.Attach("desk-1", con, srv)

	// Power on with Alice's card inserted: the server authenticates,
	// creates her session, and paints the terminal.
	if err := fabric.Boot("desk-1", "card-alice"); err != nil {
		log.Fatal(err)
	}
	if err := fabric.TypeString("desk-1", "hello, thin world!\n"); err != nil {
		log.Fatal(err)
	}
	if err := fabric.TypeString("desk-1", "the console holds no state.\n"); err != nil {
		log.Fatal(err)
	}

	// Screenshot straight from the console's soft frame buffer.
	f, err := os.Create("quickstart.png")
	if err != nil {
		log.Fatal(err)
	}
	if err := con.Framebuffer().WritePNG(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	applied, dropped := con.Counters()
	sess := srv.SessionByUser("alice")
	fmt.Printf("session %d for %s on desk-1\n", sess.ID, sess.User)
	fmt.Printf("display commands applied: %d (dropped %d)\n", applied, dropped)
	fmt.Printf("wire bytes per command type:\n%s", sess.Encoder.Stats.String())
	fmt.Println("screenshot written to quickstart.png")
}
