// Sharing: Figure 9 in miniature. How many active Netscape users fit on
// one processor before the yardstick application (30 ms of CPU per event,
// 150 ms of think time) reports noticeable delay?
package main

import (
	"fmt"
	"log"
	"time"

	"slim/internal/experiments"
	"slim/internal/loadgen"
	"slim/internal/sched"
	"slim/internal/workload"
	"slim/internal/yardstick"
)

func main() {
	log.SetFlags(0)

	// Record resource profiles for eight simulated Netscape users — the
	// §6.1 methodology: trace once, replay at any multiplicity.
	fmt.Println("recording Netscape user profiles...")
	profiles := workload.RecordedProfiles(workload.Netscape, 8, 5*time.Minute, 42)

	cfg := sched.Config{CPUs: 1, RAMMB: 4096, PagePenalty: 2}
	fmt.Println("users  avg added latency  verdict")
	knee := 0
	for _, n := range []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 20} {
		bg := make([]sched.Source, 0, n)
		for i := 0; i < n; i++ {
			bg = append(bg, loadgen.NewCPUSource(profiles[i%len(profiles)], uint64(i)*7919))
		}
		res := sched.Run(cfg, bg, yardstick.NewCPU(), 45*time.Second)
		added := res.AvgAdded()
		verdict := "imperceptible"
		switch {
		case added >= yardstick.CPUKneeAdded:
			verdict = "noticeably poor (paper's tolerance limit)"
			if knee == 0 {
				knee = n
			}
		case added >= yardstick.NoticeLow:
			verdict = "noticeable but acceptable"
		}
		fmt.Printf("%5d  %17v  %s\n", n, added.Round(100*time.Microsecond), verdict)
	}
	fmt.Printf("\nknee at %d users on one CPU (paper: 12-14 Netscape users)\n", knee)
	_ = experiments.DefaultConfig // the full sweep lives in cmd/slimbench -run fig9
}
