# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench cover fuzz reproduce examples clean race bench-guard ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Short mode skips the slow calibration and sharing sweeps.
test-short: vet
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Full test suite under the race detector (wall-clock-ratio tests skip
# themselves when they detect the race-instrumented build).
race:
	$(GO) test -race ./...

# Compile and smoke-run the benchmark suite (one iteration per benchmark):
# catches build breaks and panics in bench-only code without the full run.
# The flight-recorder and wire-capture benches ride along: they are the
# overhead guard for the always-on tracing and capture paths (the hard
# 0 allocs/op assertion on the capture-disabled path is
# TestDisabledTapAllocatesNothing, which every plain `go test` run
# enforces).
bench-guard:
	$(GO) test -run xxx -bench . -benchtime 1x . ./internal/obs/flight/ ./internal/obs/capture/ ./internal/flow/

# CI-style gate: static checks, race-detected tests, benchmark smoke run.
ci: vet race bench-guard

cover:
	$(GO) test -cover ./...

# Brief fuzz passes over the wire-format decoders.
fuzz:
	$(GO) test -run xxx -fuzz 'FuzzDecode$$' -fuzztime 30s ./internal/protocol/
	$(GO) test -run xxx -fuzz 'FuzzDecodeBatch$$' -fuzztime 30s ./internal/protocol/
	$(GO) test -run xxx -fuzz 'FuzzDecodeMessage$$' -fuzztime 30s ./internal/protocol/
	$(GO) test -run xxx -fuzz FuzzDecodeCSCS -fuzztime 30s ./internal/fb/

# Regenerate every table and figure from the paper (quick corpus).
reproduce:
	$(GO) run ./cmd/slimbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mobility
	$(GO) run ./examples/video
	$(GO) run ./examples/desktop
	$(GO) run ./examples/mediamix
	$(GO) run ./examples/sharing

clean:
	rm -f quickstart.png video-frame.png desktop.png screen.png
