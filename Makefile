# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench cover fuzz reproduce examples clean race bench-guard bench-json alloc-guard capacity capacity-smoke fleet-smoke netqual netqual-smoke codec2 codec2-smoke ci

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Short mode skips the slow calibration and sharing sweeps.
test-short: vet
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Full test suite under the race detector (wall-clock-ratio tests skip
# themselves when they detect the race-instrumented build).
race:
	$(GO) test -race ./...

# Compile and smoke-run the benchmark suite (one iteration per benchmark):
# catches build breaks and panics in bench-only code without the full run.
# The flight-recorder and wire-capture benches ride along: they are the
# overhead guard for the always-on tracing and capture paths (the hard
# 0 allocs/op assertion on the capture-disabled path is
# TestDisabledTapAllocatesNothing, which every plain `go test` run
# enforces).
bench-guard:
	$(GO) test -run xxx -bench . -benchtime 1x . ./internal/broker/ ./internal/obs/flight/ ./internal/obs/capture/ ./internal/obs/slo/ ./internal/obs/hostmon/ ./internal/obs/incident/ ./internal/obs/netqual/ ./internal/flow/ ./internal/fb/ ./internal/core/

# Measure the pixel-pipeline hot paths (optimized vs slowXxx reference
# kernels, serial vs parallel encoder) and record the numbers as JSON.
bench-json:
	$(GO) test -run xxx -bench Hotpath -benchmem ./internal/fb/ ./internal/core/ | $(GO) run ./cmd/benchjson > BENCH_hotpath.json
	@echo wrote BENCH_hotpath.json

# Steady-state allocation budgets on the hot paths (0 allocs/op for console
# apply, the warm wire-emit path, the SLO observe path — disabled AND
# enabled — the hostmon sample path, and the netqual observe path —
# disabled AND enabled). Run without -race: the race detector's
# instrumentation allocates, so these tests skip themselves under it.
alloc-guard:
	$(GO) test -run 'ZeroAlloc' -count 1 ./internal/fb/ ./internal/core/ ./internal/broker/ ./internal/obs/slo/ ./internal/obs/hostmon/ ./internal/obs/netqual/

# Regenerate the committed capacity artifact: full LAN + WAN user ramps
# until the SLO burn knee (~5s of wall time; see internal/capacity).
# TestCommittedBench validates the artifact stays consistent with the code.
capacity:
	$(GO) run ./cmd/slimload -o BENCH_capacity.json

# Two-point capacity ramp asserting the curve's shape (monotone latency,
# well-formed points, artifact roundtrip). Runs in seconds; CI runs this.
capacity-smoke:
	$(GO) test -run 'TestCapacitySmoke|TestCommittedBench' -count 1 -v ./internal/capacity/

# Regenerate the committed path-estimation accuracy artifact: the netsim
# sweep over RTT 1-300ms x loss 0-10% (see internal/obs/netqual/sweep.go).
# TestCommittedBench validates the artifact stays within the accuracy bounds.
netqual:
	$(GO) run ./cmd/slimnetqual -o BENCH_netqual.json

# Single-point estimator accuracy check plus committed-artifact validation.
# Runs in seconds; CI runs this (the full sweep is TestAccuracySweep, run
# by plain `go test`).
netqual-smoke:
	$(GO) test -run 'TestNetqualSmoke|TestCommittedBench' -count 1 -v ./internal/obs/netqual/

# Regenerate the committed gen-2 codec artifact: the scroll, re-expose,
# and mixed drives compared raw vs gen-1 vs gen-2 (the Figure 8-shaped
# bytes-on-wire table). TestCommittedBench validates the artifact stays
# consistent with the encoders.
codec2:
	$(GO) run ./cmd/slimbench -workload all -codec2out BENCH_codec2.json

# Gen-2 codec smoke: the >=5x scroll/re-expose payload-reduction
# acceptance bound, churn reclassification on the mixed drive, and
# committed-artifact validation. Runs in seconds; CI runs this (the
# zero-alloc budget for the warm cache-hit path rides in alloc-guard,
# the Codec2 hot-path benches in bench-guard).
codec2-smoke:
	$(GO) test -run 'TestCodecSpeedup|TestMixedDriveExercisesChurn|TestCommittedBench' -count 1 -v ./internal/workload/

# Session-broker fleet smoke: a 2-shard broker over the in-process fabric,
# hotdesk churn, one forced live migration, and the reattach latency
# asserted against the 2-second hotdesk budget (the full 2,000-console
# 8-shard soak is TestFleetSoak, run by plain `go test`).
fleet-smoke:
	$(GO) test -run 'TestFleetSmoke' -count 1 -v .

# CI-style gate: static checks, race-detected tests, benchmark smoke run,
# allocation budgets, capacity-curve smoke, path-estimation smoke, gen-2
# codec smoke, fleet smoke.
ci: vet race bench-guard alloc-guard capacity-smoke netqual-smoke codec2-smoke fleet-smoke

cover:
	$(GO) test -cover ./...

# Brief fuzz passes over the wire-format decoders.
fuzz:
	$(GO) test -run xxx -fuzz 'FuzzDecode$$' -fuzztime 30s ./internal/protocol/
	$(GO) test -run xxx -fuzz 'FuzzDecodeBatch$$' -fuzztime 30s ./internal/protocol/
	$(GO) test -run xxx -fuzz 'FuzzDecodeMessage$$' -fuzztime 30s ./internal/protocol/
	$(GO) test -run xxx -fuzz FuzzDecodeCSCS -fuzztime 30s ./internal/fb/
	$(GO) test -run xxx -fuzz FuzzTileCache -fuzztime 30s ./internal/core/

# Regenerate every table and figure from the paper (quick corpus).
reproduce:
	$(GO) run ./cmd/slimbench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/mobility
	$(GO) run ./examples/video
	$(GO) run ./examples/desktop
	$(GO) run ./examples/mediamix
	$(GO) run ./examples/sharing

clean:
	rm -f quickstart.png video-frame.png desktop.png screen.png
