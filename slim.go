// Package slim is a Go implementation of SLIM — the Stateless, Low-level
// Interface Machine thin-client architecture of Schmidt, Lam & Northcutt
// (SOSP 1999), the design that shipped as the Sun Ray 1.
//
// A SLIM system consists of servers that run all applications and hold all
// state, stateless pixel consoles ("not much more intelligent than a frame
// buffer"), and a dedicated interconnect carrying a five-command pixel
// protocol: SET, BITMAP, FILL, COPY, and CSCS. This package is the public
// facade: it re-exports the protocol and rendering types and provides
// ready-to-run servers and consoles over UDP or an in-process fabric.
//
// Quick start:
//
//	fabric := slim.NewFabric()
//	srv := slim.NewServer(fabric, slim.WithTerminalApp())
//	srv.Auth.Register("card-1", "alice")
//	con, _ := slim.NewConsole(slim.ConsoleConfig{Width: 1024, Height: 768})
//	fabric.Attach("desk-1", con, srv)
//	fabric.Boot("desk-1", "card-1")
//	fabric.TypeString("desk-1", "hello, thin world\n")
//
// The internal packages implement the paper's full evaluation; the
// cmd/slimbench binary regenerates every table and figure.
package slim

import (
	"log/slog"

	"slim/internal/console"
	"slim/internal/core"
	"slim/internal/flow"
	"slim/internal/protocol"
	"slim/internal/server"
)

// Re-exported wire protocol types. See Table 1 of the paper.
type (
	// Rect is a rectangular screen region.
	Rect = protocol.Rect
	// Pixel is a 24-bit RGB pixel.
	Pixel = protocol.Pixel
	// Message is any SLIM protocol message.
	Message = protocol.Message
	// MsgType identifies a protocol message type.
	MsgType = protocol.MsgType
	// CSCSFormat selects a CSCS bit depth (16/12/8/6/5 bpp).
	CSCSFormat = protocol.CSCSFormat
)

// Re-exported rendering operations accepted by session encoders.
type (
	// Op is a rendering operation.
	Op = core.Op
	// FillOp paints a solid rectangle.
	FillOp = core.FillOp
	// TextOp draws a bicolor glyph bitmap.
	TextOp = core.TextOp
	// ImageOp blits literal pixels.
	ImageOp = core.ImageOp
	// ScrollOp moves a region (COPY).
	ScrollOp = core.ScrollOp
	// VideoOp ships a YUV frame via CSCS.
	VideoOp = core.VideoOp
	// Datagram is one framed protocol message.
	Datagram = core.Datagram
	// Encoder is the SLIM display driver.
	Encoder = core.Encoder
	// CostModel prices console decode work (Table 5).
	CostModel = core.CostModel
)

// Re-exported system components.
type (
	// Console is a SLIM desktop unit.
	Console = console.Console
	// ConsoleConfig parameterizes a console.
	ConsoleConfig = console.Config
	// Server hosts sessions and system services.
	Server = server.Server
	// Session is one user's persistent desktop.
	Session = server.Session
	// Application is a program driven by session input.
	Application = server.Application
	// Terminal is the built-in echo terminal application.
	Terminal = server.Terminal
)

// RGB assembles a pixel from components.
func RGB(r, g, b uint8) Pixel { return protocol.RGB(r, g, b) }

// CSCS formats, named by bits per pixel.
const (
	CSCS16 = protocol.CSCS16
	CSCS12 = protocol.CSCS12
	CSCS8  = protocol.CSCS8
	CSCS6  = protocol.CSCS6
	CSCS5  = protocol.CSCS5
)

// NewConsole returns a SLIM console.
func NewConsole(cfg ConsoleConfig) (*Console, error) { return console.New(cfg) }

// NewEncoder returns a stand-alone display encoder managing a w×h frame
// buffer (most callers get one per session via NewServer instead).
func NewEncoder(w, h int) *Encoder { return core.NewEncoder(w, h) }

// SunRay1Costs returns the published Sun Ray 1 decode cost model.
func SunRay1Costs() *CostModel { return core.SunRay1Costs() }

// NewTerminal returns the built-in glyph terminal application.
func NewTerminal(w, h int) *Terminal { return server.NewTerminal(w, h) }

// AppFactory builds a session's application.
type AppFactory = func(user string, w, h int) Application

// WithTerminalApp is the default application factory: every session runs
// the echo terminal.
func WithTerminalApp() AppFactory {
	return func(user string, w, h int) Application { return server.NewTerminal(w, h) }
}

// ServerOption configures a server built by NewServer (or the UDP
// listeners, which forward their options).
type ServerOption = server.Option

// FlowConfig parameterizes the per-session send governor — see
// WithFlowControl and internal/flow.
type FlowConfig = flow.Config

// WithFlowControl enables the grant-driven send governor (§7) on every
// session: display traffic paces to the console's bandwidth grant, stale
// queued damage is superseded under backpressure, and NACK retransmits
// are budgeted so replay storms cannot starve fresh paints. The zero
// FlowConfig takes throughput-matched defaults from the cost model.
func WithFlowControl(cfg FlowConfig) ServerOption { return server.WithFlowControl(cfg) }

// WithCostModel installs the console decode cost model (Table 5) used to
// derive flow-control demand and pacing defaults.
func WithCostModel(cm *CostModel) ServerOption { return server.WithCostModel(cm) }

// DefaultTileCacheEntries is the dirty-tile cache capacity the gen-2
// codec's capability bit implies; a console arms its cache by setting
// ConsoleConfig.TileCacheEntries (this value, typically).
const DefaultTileCacheEntries = core.DefaultTileCacheEntries

// WithCodec2 arms the gen-2 encoder: content-typed tiles plus the
// hash-keyed dirty-tile cache. Engages per attachment, only for consoles
// that advertise the CACHE_PAINT capability (ConsoleConfig.
// TileCacheEntries > 0); everyone else keeps the gen-1 command stream.
func WithCodec2() ServerOption { return server.WithCodec2() }

// WithParallelEncoding shards large repaints and CSCS video compression in
// every session's encoder across a bounded worker pool (workers <= 0 means
// GOMAXPROCS). The emitted datagram stream is byte-identical to serial
// encoding — only encode wall-clock time changes.
func WithParallelEncoding(workers int) ServerOption { return server.WithParallelEncoding(workers) }

// WithMetricsRegistry redirects the server's live metrics into r instead
// of the process-wide registry.
func WithMetricsRegistry(r *MetricsRegistry) ServerOption { return server.WithRegistry(r) }

// CostCalibrator fits the §4.3 cost model live from per-command decode
// observations (see internal/core and the Calibration section of
// DESIGN.md). Share one calibrator between a console's
// ConsoleConfig.Calibrator and a server's WithCalibratedCosts to close
// the measure→fit→pace loop.
type CostCalibrator = core.Calibrator

// NewCalibrator returns a cost calibrator measuring drift against base
// (nil: the published Table 5 model).
func NewCalibrator(base *CostModel) *CostCalibrator { return core.NewCalibrator(base) }

// WithCalibratedCosts feeds cal's fitted cost model back into every
// session governor's demand/burst computation as calibration converges.
func WithCalibratedCosts(cal *CostCalibrator) ServerOption {
	return server.WithCalibratedCosts(cal)
}

// WithFlightRecorder points the server's causal flight recorder at rec
// instead of the process-wide one.
func WithFlightRecorder(rec *Recorder) ServerOption { return server.WithFlightRecorder(rec) }

// WithSLOTracker points the server's latency SLO engine at t instead of
// the process-wide one (slim.SLO()).
func WithSLOTracker(t *SLOTracker) ServerOption { return server.WithSLO(t) }

// WithNetQualTracker points the server's passive path estimation at t
// instead of the process-wide one (slim.NetQual()). The tracker must
// still be armed with SetEnabled; the option only chooses where the
// estimates live.
func WithNetQualTracker(t *NetQualTracker) ServerOption { return server.WithNetQual(t) }

// WithLogger attaches a structured logger for session lifecycle events
// (attach, detach, terminate, auth failure, recovery repaint). Nil keeps
// the server silent; datagram paths never log either way.
func WithLogger(l *slog.Logger) ServerOption { return server.WithLogger(l) }

// NewServer returns a SLIM server sending through the given transport.
// Options configure flow control and observability; none are required.
func NewServer(t Transport, newApp AppFactory, opts ...ServerOption) *Server {
	return server.New(t, newApp, opts...)
}
