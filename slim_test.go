package slim

import (
	"net"
	"testing"
	"time"
)

func newFabricSystem(t *testing.T) (*Fabric, *Server) {
	t.Helper()
	fabric := NewFabric()
	srv := NewServer(fabric, WithTerminalApp())
	srv.Auth.Register("card-alice", "alice")
	srv.Auth.Register("card-bob", "bob")
	return fabric, srv
}

func attachConsole(t *testing.T, fabric *Fabric, srv *Server, desk, card string) *Console {
	t.Helper()
	con, err := NewConsole(ConsoleConfig{Width: 320, Height: 240})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach(desk, con, srv)
	if err := fabric.Boot(desk, card); err != nil {
		t.Fatal(err)
	}
	return con
}

func TestFabricQuickstartFlow(t *testing.T) {
	fabric, srv := newFabricSystem(t)
	con := attachConsole(t, fabric, srv, "desk-1", "card-alice")
	if con.SessionID() == 0 {
		t.Fatal("console has no session after boot with card")
	}
	if err := fabric.TypeString("desk-1", "hi\n"); err != nil {
		t.Fatal(err)
	}
	applied, dropped := con.Counters()
	if applied == 0 || dropped != 0 {
		t.Errorf("applied=%d dropped=%d", applied, dropped)
	}
	// Console screen equals the server's authoritative frame buffer.
	sess := srv.SessionByUser("alice")
	if !con.Framebuffer().Equal(sess.Encoder.FB) {
		t.Error("console diverged from server state")
	}
}

func TestFabricMobilityExactRestore(t *testing.T) {
	fabric, srv := newFabricSystem(t)
	con1 := attachConsole(t, fabric, srv, "desk-1", "")
	con2 := attachConsole(t, fabric, srv, "desk-2", "")

	if err := fabric.InsertCard("desk-1", "card-alice"); err != nil {
		t.Fatal(err)
	}
	if err := fabric.TypeString("desk-1", "state lives on the server"); err != nil {
		t.Fatal(err)
	}
	before := con1.Framebuffer().Snapshot()
	sessionID := con1.SessionID()

	if err := fabric.InsertCard("desk-2", "card-alice"); err != nil {
		t.Fatal(err)
	}
	if con2.SessionID() != sessionID || sessionID == 0 {
		t.Error("session did not follow the card")
	}
	if con1.SessionID() != 0 {
		t.Error("old console still attached")
	}
	if !con2.Framebuffer().Equal(before) {
		t.Error("screen not restored bit-for-bit at the new desk")
	}
	// Typing continues at the new desk only.
	if err := fabric.TypeString("desk-2", "!"); err != nil {
		t.Fatal(err)
	}
	if err := fabric.TypeString("desk-1", "x"); err == nil {
		t.Error("detached desk still accepted input")
	}
}

func TestFabricTwoUsersTwoDesks(t *testing.T) {
	fabric, srv := newFabricSystem(t)
	conA := attachConsole(t, fabric, srv, "desk-a", "card-alice")
	conB := attachConsole(t, fabric, srv, "desk-b", "card-bob")
	if err := fabric.TypeString("desk-a", "aaaa"); err != nil {
		t.Fatal(err)
	}
	if err := fabric.TypeString("desk-b", "bb"); err != nil {
		t.Fatal(err)
	}
	sa, sb := srv.SessionByUser("alice"), srv.SessionByUser("bob")
	if sa.ID == sb.ID {
		t.Fatal("users share a session")
	}
	if !conA.Framebuffer().Equal(sa.Encoder.FB) || !conB.Framebuffer().Equal(sb.Encoder.FB) {
		t.Error("a console diverged")
	}
	if conA.Framebuffer().Equal(conB.Framebuffer()) {
		t.Error("different sessions show identical screens")
	}
}

func TestFabricPointer(t *testing.T) {
	fabric, srv := newFabricSystem(t)
	attachConsole(t, fabric, srv, "desk-1", "card-alice")
	if err := fabric.SendPointer("desk-1", 100, 50, 1); err != nil {
		t.Fatal(err)
	}
	term := srv.SessionByUser("alice").App.(*Terminal)
	col, row := term.Cursor()
	if col == 0 && row == 0 {
		t.Error("click did not move the terminal cursor")
	}
}

func TestFabricErrors(t *testing.T) {
	fabric, _ := newFabricSystem(t)
	if err := fabric.Boot("ghost", ""); err == nil {
		t.Error("boot of unknown desk succeeded")
	}
	if err := fabric.SendKey("ghost", 'a', true); err == nil {
		t.Error("key to unknown desk succeeded")
	}
	if _, err := fabric.Console("ghost"); err == nil {
		t.Error("lookup of unknown desk succeeded")
	}
	if err := fabric.Send("ghost", nil); err == nil {
		t.Error("send to unknown desk succeeded")
	}
}

func TestUDPEndToEnd(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", WithTerminalApp())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Server.Auth.Register("card-u", "udpuser")

	con, err := DialConsole(srv.Addr().String(), ConsoleConfig{Width: 320, Height: 240}, TokenOf("card-u"))
	if err != nil {
		t.Fatal(err)
	}
	defer con.Close()

	// Wait for the attach + initial repaint to land.
	deadline := time.Now().Add(3 * time.Second)
	for con.Console.SessionID() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("console never attached over UDP")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := con.TypeString("udp works"); err != nil {
		t.Fatal(err)
	}
	// Wait until the glyphs arrive.
	deadline = time.Now().Add(3 * time.Second)
	for {
		applied, _ := con.Console.Counters()
		if applied >= 10 { // clear fill + 9 glyphs
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("echo never arrived (applied=%d)", applied)
		}
		time.Sleep(5 * time.Millisecond)
	}
	sess := srv.Server.SessionByUser("udpuser")
	// Let any in-flight datagrams settle, then compare screens.
	time.Sleep(50 * time.Millisecond)
	if !con.Console.Framebuffer().Equal(sess.Encoder.FB) {
		t.Error("UDP console diverged from server state")
	}
}

func TestUDPMobilityAcrossConsoles(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", WithTerminalApp())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Server.Auth.Register("card-m", "mover")

	con1, err := DialConsole(srv.Addr().String(), ConsoleConfig{Width: 320, Height: 240}, TokenOf("card-m"))
	if err != nil {
		t.Fatal(err)
	}
	defer con1.Close()
	waitAttached(t, con1)
	if err := con1.TypeString("abc"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	before := con1.Console.Framebuffer().Snapshot()

	// Second console presents the same card: session moves.
	con2, err := DialConsole(srv.Addr().String(), ConsoleConfig{Width: 320, Height: 240}, TokenOf("card-m"))
	if err != nil {
		t.Fatal(err)
	}
	defer con2.Close()
	waitAttached(t, con2)
	time.Sleep(100 * time.Millisecond)
	if !con2.Console.Framebuffer().Equal(before) {
		t.Error("UDP mobility did not restore the screen")
	}
}

func waitAttached(t *testing.T, con *UDPConsole) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for con.Console.SessionID() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("console never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLossRecoveryConvergence(t *testing.T) {
	fabric, srv := newFabricSystem(t)
	con, err := NewConsole(ConsoleConfig{Width: 320, Height: 240, ReorderWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk-l", con, srv)
	if err := fabric.Boot("desk-l", "card-alice"); err != nil {
		t.Fatal(err)
	}
	// Drop every 7th display datagram while typing several lines. Gaps
	// past the 2-datagram reorder window trigger Nacks; the server's
	// replay buffer (or repaint) regenerates the losses synchronously on
	// this fabric.
	fabric.SetLoss(7)
	for line := 0; line < 12; line++ {
		if err := fabric.TypeString("desk-l", "packet loss is survivable!\n"); err != nil {
			t.Fatal(err)
		}
	}
	delivered, dropped := fabric.LossStats()
	if dropped == 0 {
		t.Fatal("loss injection inactive")
	}
	// Stop dropping, then push one more update so any trailing gap is
	// detected and recovered.
	fabric.SetLoss(0)
	if err := fabric.TypeString("desk-l", "tail\n"); err != nil {
		t.Fatal(err)
	}
	sess := srv.SessionByUser("alice")
	if !con.Framebuffer().Equal(sess.Encoder.FB) {
		t.Errorf("console did not converge after %d/%d datagrams dropped",
			dropped, delivered+dropped)
	}
}

func TestVideoAppOverFabric(t *testing.T) {
	fabric := NewFabric()
	src := NewQuakeSource(160, 120, 5)
	srv := NewServer(fabric, func(user string, w, h int) Application {
		return NewVideoApp(src, Rect{X: 0, Y: 0, W: 160, H: 120}, CSCS5, 25)
	})
	srv.Auth.Register("card-v", "viewer")
	con, err := NewConsole(ConsoleConfig{Width: 160, Height: 120})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk-v", con, srv)
	if err := fabric.Boot("desk-v", "card-v"); err != nil {
		t.Fatal(err)
	}
	// Drive the application clock: one second of model time at 25 fps.
	for i := 0; i <= 25; i++ {
		if err := srv.Tick(time.Duration(i) * 40 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	sess := srv.SessionByUser("viewer")
	app := sess.App.(*VideoApp)
	if app.Frames() < 20 {
		t.Fatalf("rendered %d frames in 1s at 25fps", app.Frames())
	}
	if !con.Framebuffer().Equal(sess.Encoder.FB) {
		t.Error("console diverged during video playback")
	}
	// Space pauses.
	if err := fabric.SendKey("desk-v", ' ', true); err != nil {
		t.Fatal(err)
	}
	before := app.Frames()
	if err := srv.Tick(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if app.Frames() != before {
		t.Error("paused player kept rendering")
	}
}

func TestUDPTickerStreamsVideo(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", func(user string, w, h int) Application {
		return NewVideoApp(NewQuakeSource(120, 90, 7), Rect{W: 120, H: 90}, CSCS5, 60)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Server.Auth.Register("card-t", "tv")
	srv.StartTicker(60)

	con, err := DialConsole(srv.Addr().String(), ConsoleConfig{Width: 120, Height: 90}, TokenOf("card-t"))
	if err != nil {
		t.Fatal(err)
	}
	defer con.Close()
	waitAttached(t, con)
	deadline := time.Now().Add(5 * time.Second)
	for {
		applied, _ := con.Console.Counters()
		if applied >= 30 { // several frames of CSCS strips arrived
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("video never streamed over UDP (applied=%d)", applied)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDesktopAppOverFabric(t *testing.T) {
	fabric := NewFabric()
	srv := NewServer(fabric, WithDesktopApp())
	srv.Auth.Register("card-d", "desker")
	con, err := NewConsole(ConsoleConfig{Width: 800, Height: 600})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk", con, srv)
	if err := fabric.Boot("desk", "card-d"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Tick(0); err != nil { // initial desktop paint
		t.Fatal(err)
	}
	type_ := func(s string) {
		t.Helper()
		if err := fabric.TypeString("desk", s); err != nil {
			t.Fatal(err)
		}
	}
	type_("hello window one")
	if err := fabric.SendKey("desk", KeyNewWindow, true); err != nil {
		t.Fatal(err)
	}
	if err := fabric.SendKey("desk", KeyNewWindow, false); err != nil {
		t.Fatal(err)
	}
	type_("window two")
	if err := fabric.SendKey("desk", KeyNudgeRight, true); err != nil {
		t.Fatal(err)
	}
	sess := srv.SessionByUser("desker")
	app := sess.App.(*DesktopApp)
	if app.Windows() != 2 {
		t.Fatalf("windows = %d", app.Windows())
	}
	if !con.Framebuffer().Equal(sess.Encoder.FB) {
		t.Error("console diverged from desktop session")
	}
	// The desktop survives hot-desking like everything else.
	con2, err := NewConsole(ConsoleConfig{Width: 800, Height: 600})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk2", con2, srv)
	if err := fabric.Boot("desk2", ""); err != nil {
		t.Fatal(err)
	}
	if err := fabric.InsertCard("desk2", "card-d"); err != nil {
		t.Fatal(err)
	}
	if !con2.Framebuffer().Equal(sess.Encoder.FB) {
		t.Error("desktop not restored after mobility")
	}
}

func TestUDPServerSurvivesGarbage(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", WithTerminalApp())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Server.Auth.Register("card-g", "gina")

	// Blast junk at the daemon from a raw socket.
	raw, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	junk := [][]byte{
		{},
		{0x00},
		[]byte("GET / HTTP/1.1\r\n"),
		make([]byte, 32*1024), // large but under the UDP datagram cap
		{0x53, 0x4c, 0x01, 0xff, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff},
	}
	for _, j := range junk {
		if _, err := raw.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	// The daemon must still serve a real console afterwards.
	con, err := DialConsole(srv.Addr().String(), ConsoleConfig{Width: 320, Height: 240}, TokenOf("card-g"))
	if err != nil {
		t.Fatal(err)
	}
	defer con.Close()
	waitAttached(t, con)
	if err := con.TypeString("still alive"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		applied, _ := con.Console.Counters()
		if applied > 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server unresponsive after garbage")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPublicConstructors(t *testing.T) {
	if NewEncoder(10, 10) == nil || SunRay1Costs() == nil || NewTerminal(80, 64) == nil {
		t.Fatal("constructor returned nil")
	}
	p := RGB(1, 2, 3)
	if p.R() != 1 || p.G() != 2 || p.B() != 3 {
		t.Error("RGB re-export broken")
	}
	if CSCS5.BitsPerPixel() != 5 || CSCS16.BitsPerPixel() != 16 {
		t.Error("CSCS re-exports broken")
	}
}
