package slim

import (
	"html"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"slim/internal/core"
	"slim/internal/obs"
	"slim/internal/obs/capture"
	"slim/internal/obs/flight"
	"slim/internal/obs/hostmon"
	"slim/internal/obs/incident"
	"slim/internal/obs/netqual"
	"slim/internal/obs/slo"
)

// Runtime observability facade. Every hot path in the package — session
// encoders, both transports, console decode, the session manager — reports
// live counters, gauges, and latency histograms into a process-wide
// registry (see internal/obs). The headline instrument is
// slim_input_to_paint_seconds: the paper's §3 interactive-latency metric,
// recorded per input event from capture through encode, wire, decode, and
// damage flush, globally and per session.

// Metrics re-exports the obs registry and snapshot types.
type (
	// MetricsRegistry is a named collection of live metrics in one clock
	// domain (wall or simulated).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is a copied histogram with p50/p95/p99 computed.
	HistogramSnapshot = obs.HistogramSnapshot
)

// Metrics returns the process-wide wall-clock metrics registry that live
// servers, consoles, and transports publish into.
func Metrics() *MetricsRegistry { return obs.Default }

// SimMetrics returns the process-wide simulated-clock registry that
// netsim links publish into.
func SimMetrics() *MetricsRegistry { return obs.Sim }

// Recorder is a causal flight recorder (see internal/obs/flight) —
// per-session protocol event rings with breach dumps and Perfetto export.
type Recorder = flight.Recorder

// FlightRecorder returns the process-wide causal flight recorder: the
// per-session protocol event rings behind /debug/trace and the breach
// dumps (see internal/obs/flight). Configure its threshold and dump
// directory here; servers and consoles record into it unless redirected.
func FlightRecorder() *flight.Recorder { return flight.Default }

// SetFlightThreshold sets the input-to-paint latency above which the
// flight recorder dumps a session's recent events (default 150 ms, the
// paper's §3 annoyance bound; 0 disables breach detection).
func SetFlightThreshold(d time.Duration) { flight.Default.SetThreshold(d) }

// SetFlightDumpDir directs breach dumps to dir (empty keeps dumps off;
// breaches are still counted and marked in the ring).
func SetFlightDumpDir(dir string) { flight.Default.SetDumpDir(dir) }

// SLOTracker is the online latency SLO engine (see internal/obs/slo):
// rolling multi-window breach rates against the 150 ms / 1% objective,
// burn-rate computation, and OK/DEGRADED/BREACHING health states, per
// session and fleet-wide.
type SLOTracker = slo.Tracker

// SLOConfig parameterizes a tracker's objective and windows.
type SLOConfig = slo.Config

// SLO returns the process-wide wall-clock SLO tracker: live servers
// evaluate every input-to-paint latency against it unless redirected, and
// /debug/slo serves its state.
func SLO() *SLOTracker { return slo.Default }

// SetSLOTarget sets the per-event latency objective (default the paper's
// 150 ms annoyance bound).
func SetSLOTarget(d time.Duration) { slo.Default.SetTarget(d) }

// SetSLOBudget sets the allowed breach fraction (default 0.01: 1% of
// events may exceed the target).
func SetSLOBudget(b float64) { slo.Default.SetBudget(b) }

// NetQualTracker is the passive network-path estimator (see
// internal/obs/netqual): per-session smoothed RTT, jitter, loss, and
// delivered goodput derived purely from traffic the protocol already
// carries — STATUS acks, NACKs, and bandwidth grant round-trips.
type NetQualTracker = netqual.Tracker

// NetQual returns the process-wide wall-clock path estimator: live
// servers register sessions here unless redirected, /debug/netqual serves
// its state, and slimstat's rtt/jitter/loss columns read its gauges.
// Disabled (observe paths cost one atomic load) until SetNetQualEnabled
// or slimd/slimbroker -netqual.
func NetQual() *NetQualTracker { return netqual.Default }

// SetNetQualEnabled arms or disarms passive path estimation process-wide.
func SetNetQualEnabled(on bool) { netqual.Default.SetEnabled(on) }

// defaultCalibrator is the process-wide cost calibrator behind
// Calibrator() and /debug/costmodel, instrumented in the default registry
// so its drift gauges appear in /metrics.
var defaultCalibrator = core.NewCalibrator(nil).Instrument(obs.Default)

// Calibrator returns the process-wide cost-model calibrator. Point a
// console's ConsoleConfig.Calibrator at it (and a server at
// WithCalibratedCosts(slim.Calibrator())) and /debug/costmodel shows the
// measured-versus-Table-5 fit for this host.
func Calibrator() *CostCalibrator { return defaultCalibrator }

// CostModelHandler serves cal's live calibration state — the fitted
// startup/per-pixel costs, R², sample counts, and drift versus Table 5 —
// as an indented JSON document. DebugHandler mounts it for the default
// calibrator at /debug/costmodel.
func CostModelHandler(cal *CostCalibrator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = cal.WriteJSON(w)
	})
}

// Capture returns the process-wide wire-capture ring (disabled until a
// capture is started). The UDP transport and every fabric tap it; see
// internal/obs/capture and the .slimcap section of PROTOCOL.md.
func Capture() *capture.Ring { return capture.Default }

// CaptureFile is an in-progress wire capture spooling to disk.
type CaptureFile struct {
	f      *os.File
	ring   *capture.Ring
	ticker *time.Ticker
	done   chan struct{}
	once   sync.Once

	mu  sync.Mutex // serializes spools and guards err
	err error
}

// spool drains the ring to the file under the spool lock.
func (c *CaptureFile) spool() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.ring.SpoolTo(c.f); err != nil && c.err == nil {
		c.err = err
	}
}

// StartCapture enables the process-wide capture ring and spools it to a
// .slimcap file at path until Close. The spool runs in the background a
// few times a second; ring drops (bursts outrunning the spooler) are
// counted in slim_capture_ring_drops_total rather than blocking
// transports.
func StartCapture(path string) (*CaptureFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := capture.WriteHeader(f, obs.DomainWall, time.Now()); err != nil {
		f.Close()
		return nil, err
	}
	cf := &CaptureFile{f: f, ring: capture.Default, ticker: time.NewTicker(250 * time.Millisecond),
		done: make(chan struct{})}
	cf.ring.SetEnabled(true)
	captureMu.Lock()
	capturePath = path // incident bundles tail the live spool
	captureMu.Unlock()
	go func() {
		for {
			select {
			case <-cf.ticker.C:
				cf.spool()
			case <-cf.done:
				return
			}
		}
	}()
	return cf, nil
}

// Close disables the capture, spools the remaining records, and closes
// the file. Safe to call more than once.
func (c *CaptureFile) Close() error {
	c.once.Do(func() {
		c.ring.SetEnabled(false)
		c.ticker.Stop()
		close(c.done)
		c.spool()
		c.mu.Lock()
		if err := c.f.Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Host-runtime telemetry facade. The default monitor samples
// runtime/metrics into the default registry and feeds GC/CPU stall
// windows to the default flight recorder as HOST-verdict evidence; the
// default profiler keeps a rotating ring of short CPU-profile windows.
// Both are stopped until StartHostMonitor.
var (
	defaultMonitor = hostmon.New(hostmon.Config{Clock: flight.Default.Clock}).
			Instrument(obs.Default)
	defaultProfiler = hostmon.NewProfiler(0, 0, 0).Instrument(obs.Default)

	incidentMu      sync.Mutex
	defaultIncident *incident.Engine

	captureMu   sync.Mutex
	capturePath string // live spool path for incident bundles
)

// HostMonitor returns the process-wide host-runtime monitor (see
// internal/obs/hostmon): slim_runtime_* series, the sample ring behind
// /debug/hostmon, and the stall windows behind HOST breach verdicts.
func HostMonitor() *hostmon.Monitor { return defaultMonitor }

// HostProfiler returns the process-wide continuous CPU profiler: a
// rotating ring of short pprof windows with top-N self-time gauges.
func HostProfiler() *hostmon.Profiler { return defaultProfiler }

// StartHostMonitor starts the default monitor and profiler and wires the
// monitor's stall windows into the default flight recorder, upgrading
// breach attribution with HOST verdicts. Returns a stop func that
// unwires and shuts both down.
func StartHostMonitor() (stop func()) {
	flight.Default.SetHostEvidence(defaultMonitor.Windows)
	defaultMonitor.Start()
	defaultProfiler.Start()
	return func() {
		flight.Default.SetHostEvidence(nil)
		defaultMonitor.Close()
		defaultProfiler.Close()
	}
}

// IncidentEngine re-exports the SLO-triggered incident bundler.
type IncidentEngine = incident.Engine

// StartIncidents builds, wires, and starts the process-wide incident
// engine: SLO transitions into DEGRADED/BREACHING write rate-limited
// bundles under dir containing the current CPU-profile window, heap and
// goroutine dumps, flight breach dumps, the capture-spool tail, and the
// /debug/slo, /debug/costmodel, and hostmon snapshots. Returns the
// engine (Close to stop). Calling it again replaces the previous engine.
func StartIncidents(dir string) *IncidentEngine {
	captureMu.Lock()
	capFile := capturePath
	captureMu.Unlock()
	e := incident.New(incident.Config{Dir: dir}, incident.Sources{
		SLO:         slo.Default,
		Monitor:     defaultMonitor,
		Profiler:    defaultProfiler,
		Registry:    obs.Default,
		Costmodel:   defaultCalibrator.WriteJSON,
		FlightDir:   flight.Default.DumpDir(),
		CaptureFile: capFile,
	}).Instrument(obs.Default)
	e.Start()
	incidentMu.Lock()
	old := defaultIncident
	defaultIncident = e
	incidentMu.Unlock()
	if old != nil {
		old.Close()
	}
	return e
}

// Incidents returns the process-wide incident engine, or nil before
// StartIncidents.
func Incidents() *IncidentEngine {
	incidentMu.Lock()
	defer incidentMu.Unlock()
	return defaultIncident
}

// DebugEndpoint is one entry in the debug-endpoint table: a mounted path
// and its one-line description.
type DebugEndpoint struct {
	Path        string `json:"path"`
	Description string `json:"description"`
}

// DebugEndpoints is the canonical table of every endpoint DebugHandler
// mounts — the /debug/ index page and the README table both derive from
// it.
func DebugEndpoints() []DebugEndpoint {
	return []DebugEndpoint{
		{"/metrics", "Prometheus text exposition of every live series (wall and sim domains)"},
		{"/debug/vars", "JSON snapshot of all registries, keyed by clock domain"},
		{"/debug/pprof/", "standard net/http/pprof profile index (heap, goroutine, profile, trace, ...)"},
		{"/debug/trace", "Perfetto trace-event JSON from the flight recorder's session rings"},
		{"/debug/costmodel", "live cost-model calibration fit versus the paper's Table 5"},
		{"/debug/slo", "SLO burn rates, OK/DEGRADED/BREACHING states, and breach-blame histograms"},
		{"/debug/netqual", "per-session passive path estimates: smoothed RTT, jitter, loss windows, goodput"},
		{"/debug/hostmon", "host-runtime sample ring, GC/CPU stall windows, and top-N profile self-time"},
		{"/debug/incident", "incident bundles: GET lists manifests, POST ?trigger=reason writes one now"},
	}
}

// debugIndex renders the endpoint table as a minimal HTML index at
// /debug/ (and JSON with ?format=json).
func debugIndex() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/" && r.URL.Path != "/debug" && r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		eps := DebugEndpoints()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte("<!DOCTYPE html><html><head><title>slimd debug</title></head><body>" +
			"<h1>slimd debug endpoints</h1><table border=\"0\" cellpadding=\"4\">\n"))
		for _, ep := range eps {
			w.Write([]byte(`<tr><td><a href="` + ep.Path + `">` + ep.Path + `</a></td><td>` +
				html.EscapeString(ep.Description) + "</td></tr>\n"))
		}
		w.Write([]byte("</table></body></html>\n"))
	})
}

// DebugHandler returns the debug endpoint served by slimd -debug. The
// mounted paths and their descriptions are exactly DebugEndpoints —
// /debug/ serves that table as an index page; see the README's
// debug-endpoint table for the same list. Embed it in any HTTP server.
func DebugHandler() http.Handler {
	mux := obs.DebugMux(obs.Default, obs.Sim)
	mux.Handle("/debug/trace", flight.Default.TraceHandler())
	mux.Handle("/debug/costmodel", CostModelHandler(defaultCalibrator))
	mux.Handle("/debug/slo", slo.Default.Handler())
	mux.Handle("/debug/netqual", netqual.Default.Handler())
	mux.Handle("/debug/hostmon", defaultMonitor.Handler(defaultProfiler))
	mux.Handle("/debug/incident", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e := Incidents()
		if e == nil {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			http.Error(w, `{"error":"incident engine not started (slimd -incident-dir)"}`,
				http.StatusServiceUnavailable)
			return
		}
		e.Handler().ServeHTTP(w, r)
	}))
	mux.Handle("/debug/", debugIndex())
	mux.Handle("/", debugIndex())
	return mux
}

// ServeDebug binds addr and serves DebugHandler in the background,
// returning the server (Close to stop) once the listener is up.
func ServeDebug(addr string) (*http.Server, error) {
	srv := &http.Server{Addr: addr, Handler: DebugHandler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
