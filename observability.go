package slim

import (
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"slim/internal/core"
	"slim/internal/obs"
	"slim/internal/obs/capture"
	"slim/internal/obs/flight"
	"slim/internal/obs/slo"
)

// Runtime observability facade. Every hot path in the package — session
// encoders, both transports, console decode, the session manager — reports
// live counters, gauges, and latency histograms into a process-wide
// registry (see internal/obs). The headline instrument is
// slim_input_to_paint_seconds: the paper's §3 interactive-latency metric,
// recorded per input event from capture through encode, wire, decode, and
// damage flush, globally and per session.

// Metrics re-exports the obs registry and snapshot types.
type (
	// MetricsRegistry is a named collection of live metrics in one clock
	// domain (wall or simulated).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is a copied histogram with p50/p95/p99 computed.
	HistogramSnapshot = obs.HistogramSnapshot
)

// Metrics returns the process-wide wall-clock metrics registry that live
// servers, consoles, and transports publish into.
func Metrics() *MetricsRegistry { return obs.Default }

// SimMetrics returns the process-wide simulated-clock registry that
// netsim links publish into.
func SimMetrics() *MetricsRegistry { return obs.Sim }

// Recorder is a causal flight recorder (see internal/obs/flight) —
// per-session protocol event rings with breach dumps and Perfetto export.
type Recorder = flight.Recorder

// FlightRecorder returns the process-wide causal flight recorder: the
// per-session protocol event rings behind /debug/trace and the breach
// dumps (see internal/obs/flight). Configure its threshold and dump
// directory here; servers and consoles record into it unless redirected.
func FlightRecorder() *flight.Recorder { return flight.Default }

// SetFlightThreshold sets the input-to-paint latency above which the
// flight recorder dumps a session's recent events (default 150 ms, the
// paper's §3 annoyance bound; 0 disables breach detection).
func SetFlightThreshold(d time.Duration) { flight.Default.SetThreshold(d) }

// SetFlightDumpDir directs breach dumps to dir (empty keeps dumps off;
// breaches are still counted and marked in the ring).
func SetFlightDumpDir(dir string) { flight.Default.SetDumpDir(dir) }

// SLOTracker is the online latency SLO engine (see internal/obs/slo):
// rolling multi-window breach rates against the 150 ms / 1% objective,
// burn-rate computation, and OK/DEGRADED/BREACHING health states, per
// session and fleet-wide.
type SLOTracker = slo.Tracker

// SLOConfig parameterizes a tracker's objective and windows.
type SLOConfig = slo.Config

// SLO returns the process-wide wall-clock SLO tracker: live servers
// evaluate every input-to-paint latency against it unless redirected, and
// /debug/slo serves its state.
func SLO() *SLOTracker { return slo.Default }

// SetSLOTarget sets the per-event latency objective (default the paper's
// 150 ms annoyance bound).
func SetSLOTarget(d time.Duration) { slo.Default.SetTarget(d) }

// SetSLOBudget sets the allowed breach fraction (default 0.01: 1% of
// events may exceed the target).
func SetSLOBudget(b float64) { slo.Default.SetBudget(b) }

// defaultCalibrator is the process-wide cost calibrator behind
// Calibrator() and /debug/costmodel, instrumented in the default registry
// so its drift gauges appear in /metrics.
var defaultCalibrator = core.NewCalibrator(nil).Instrument(obs.Default)

// Calibrator returns the process-wide cost-model calibrator. Point a
// console's ConsoleConfig.Calibrator at it (and a server at
// WithCalibratedCosts(slim.Calibrator())) and /debug/costmodel shows the
// measured-versus-Table-5 fit for this host.
func Calibrator() *CostCalibrator { return defaultCalibrator }

// CostModelHandler serves cal's live calibration state — the fitted
// startup/per-pixel costs, R², sample counts, and drift versus Table 5 —
// as an indented JSON document. DebugHandler mounts it for the default
// calibrator at /debug/costmodel.
func CostModelHandler(cal *CostCalibrator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = cal.WriteJSON(w)
	})
}

// Capture returns the process-wide wire-capture ring (disabled until a
// capture is started). The UDP transport and every fabric tap it; see
// internal/obs/capture and the .slimcap section of PROTOCOL.md.
func Capture() *capture.Ring { return capture.Default }

// CaptureFile is an in-progress wire capture spooling to disk.
type CaptureFile struct {
	f      *os.File
	ring   *capture.Ring
	ticker *time.Ticker
	done   chan struct{}
	once   sync.Once

	mu  sync.Mutex // serializes spools and guards err
	err error
}

// spool drains the ring to the file under the spool lock.
func (c *CaptureFile) spool() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.ring.SpoolTo(c.f); err != nil && c.err == nil {
		c.err = err
	}
}

// StartCapture enables the process-wide capture ring and spools it to a
// .slimcap file at path until Close. The spool runs in the background a
// few times a second; ring drops (bursts outrunning the spooler) are
// counted in slim_capture_ring_drops_total rather than blocking
// transports.
func StartCapture(path string) (*CaptureFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := capture.WriteHeader(f, obs.DomainWall, time.Now()); err != nil {
		f.Close()
		return nil, err
	}
	cf := &CaptureFile{f: f, ring: capture.Default, ticker: time.NewTicker(250 * time.Millisecond),
		done: make(chan struct{})}
	cf.ring.SetEnabled(true)
	go func() {
		for {
			select {
			case <-cf.ticker.C:
				cf.spool()
			case <-cf.done:
				return
			}
		}
	}()
	return cf, nil
}

// Close disables the capture, spools the remaining records, and closes
// the file. Safe to call more than once.
func (c *CaptureFile) Close() error {
	c.once.Do(func() {
		c.ring.SetEnabled(false)
		c.ticker.Stop()
		close(c.done)
		c.spool()
		c.mu.Lock()
		if err := c.f.Close(); err != nil && c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// DebugHandler returns the debug endpoint served by slimd -debug:
// /metrics (Prometheus text), /debug/vars (JSON snapshot), /debug/trace
// (Perfetto trace-event JSON from the flight recorder), /debug/costmodel
// (the live cost-model calibration fit), /debug/slo (the SLO engine's
// burn rates, health states, and blame histograms), and /debug/pprof/ —
// embed it in any HTTP server.
func DebugHandler() http.Handler {
	mux := obs.DebugMux(obs.Default, obs.Sim)
	mux.Handle("/debug/trace", flight.Default.TraceHandler())
	mux.Handle("/debug/costmodel", CostModelHandler(defaultCalibrator))
	mux.Handle("/debug/slo", slo.Default.Handler())
	return mux
}

// ServeDebug binds addr and serves DebugHandler in the background,
// returning the server (Close to stop) once the listener is up.
func ServeDebug(addr string) (*http.Server, error) {
	srv := &http.Server{Addr: addr, Handler: DebugHandler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
