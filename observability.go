package slim

import (
	"net/http"

	"slim/internal/obs"
)

// Runtime observability facade. Every hot path in the package — session
// encoders, both transports, console decode, the session manager — reports
// live counters, gauges, and latency histograms into a process-wide
// registry (see internal/obs). The headline instrument is
// slim_input_to_paint_seconds: the paper's §3 interactive-latency metric,
// recorded per input event from capture through encode, wire, decode, and
// damage flush, globally and per session.

// Metrics re-exports the obs registry and snapshot types.
type (
	// MetricsRegistry is a named collection of live metrics in one clock
	// domain (wall or simulated).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is a copied histogram with p50/p95/p99 computed.
	HistogramSnapshot = obs.HistogramSnapshot
)

// Metrics returns the process-wide wall-clock metrics registry that live
// servers, consoles, and transports publish into.
func Metrics() *MetricsRegistry { return obs.Default }

// SimMetrics returns the process-wide simulated-clock registry that
// netsim links publish into.
func SimMetrics() *MetricsRegistry { return obs.Sim }

// DebugHandler returns the debug endpoint served by slimd -debug:
// /metrics (Prometheus text), /debug/vars (JSON snapshot), and
// /debug/pprof/ — embed it in any HTTP server.
func DebugHandler() http.Handler { return obs.DebugMux(obs.Default, obs.Sim) }

// ServeDebug binds addr and serves DebugHandler in the background,
// returning the server (Close to stop) once the listener is up.
func ServeDebug(addr string) (*http.Server, error) {
	return obs.ServeDebug(addr, obs.Default, obs.Sim)
}
