package slim

import (
	"net"
	"net/http"
	"time"

	"slim/internal/obs"
	"slim/internal/obs/flight"
)

// Runtime observability facade. Every hot path in the package — session
// encoders, both transports, console decode, the session manager — reports
// live counters, gauges, and latency histograms into a process-wide
// registry (see internal/obs). The headline instrument is
// slim_input_to_paint_seconds: the paper's §3 interactive-latency metric,
// recorded per input event from capture through encode, wire, decode, and
// damage flush, globally and per session.

// Metrics re-exports the obs registry and snapshot types.
type (
	// MetricsRegistry is a named collection of live metrics in one clock
	// domain (wall or simulated).
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is a copied histogram with p50/p95/p99 computed.
	HistogramSnapshot = obs.HistogramSnapshot
)

// Metrics returns the process-wide wall-clock metrics registry that live
// servers, consoles, and transports publish into.
func Metrics() *MetricsRegistry { return obs.Default }

// SimMetrics returns the process-wide simulated-clock registry that
// netsim links publish into.
func SimMetrics() *MetricsRegistry { return obs.Sim }

// Recorder is a causal flight recorder (see internal/obs/flight) —
// per-session protocol event rings with breach dumps and Perfetto export.
type Recorder = flight.Recorder

// FlightRecorder returns the process-wide causal flight recorder: the
// per-session protocol event rings behind /debug/trace and the breach
// dumps (see internal/obs/flight). Configure its threshold and dump
// directory here; servers and consoles record into it unless redirected.
func FlightRecorder() *flight.Recorder { return flight.Default }

// SetFlightThreshold sets the input-to-paint latency above which the
// flight recorder dumps a session's recent events (default 150 ms, the
// paper's §3 annoyance bound; 0 disables breach detection).
func SetFlightThreshold(d time.Duration) { flight.Default.SetThreshold(d) }

// SetFlightDumpDir directs breach dumps to dir (empty keeps dumps off;
// breaches are still counted and marked in the ring).
func SetFlightDumpDir(dir string) { flight.Default.SetDumpDir(dir) }

// DebugHandler returns the debug endpoint served by slimd -debug:
// /metrics (Prometheus text), /debug/vars (JSON snapshot), /debug/trace
// (Perfetto trace-event JSON from the flight recorder), and
// /debug/pprof/ — embed it in any HTTP server.
func DebugHandler() http.Handler {
	mux := obs.DebugMux(obs.Default, obs.Sim)
	mux.Handle("/debug/trace", flight.Default.TraceHandler())
	return mux
}

// ServeDebug binds addr and serves DebugHandler in the background,
// returning the server (Close to stop) once the listener is up.
func ServeDebug(addr string) (*http.Server, error) {
	srv := &http.Server{Addr: addr, Handler: DebugHandler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
