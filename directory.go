package slim

import (
	"context"
	"time"

	"slim/internal/broker"
	"slim/internal/obs"
	"slim/internal/server"
)

// Directory is the attach-oriented API surface: the place card tokens are
// enrolled and the place console traffic enters the server side, whether
// that side is one server or a sharded fleet. Both implementations are
// compile-time asserted below:
//
//   - Single wraps an ordinary *Server: one shard, no migration — exactly
//     the behavior slimd ships by default.
//   - Broker fronts N server shards with token-authenticated placement and
//     live hotdesk migration.
//
// Transports only need the narrower SessionHandler subset; Directory adds
// the fleet-management calls (Register/Revoke, Locate, Detach/Terminate).
type Directory interface {
	SessionHandler
	// Register enrolls a card token for a user, fleet-wide.
	Register(tok Token, user string)
	// Revoke withdraws a card token fleet-wide.
	Revoke(tok Token)
	// SessionByUser reports a user's session, wherever it lives (nil if
	// none).
	SessionByUser(user string) *Session
	// Locate reports which shard hosts a user's session (always 0 for a
	// single server; ok is false when the user has no session).
	Locate(user string) (shard int, ok bool)
	// Shards reports the fleet size (1 for a single server).
	Shards() int
	// Sessions reports the fleet-wide live session count.
	Sessions() int
	// Detach pulls a user's session off its console; state persists.
	Detach(user string) error
	// Terminate destroys a user's session and its observability residue.
	Terminate(user string) error
	// Tick drives self-clocked applications (video, animations).
	Tick(now time.Duration) error
}

// Compile-time assertions: both directory implementations really do
// present the same surface.
var (
	_ Directory = Single{}
	_ Directory = (*Broker)(nil)
)

// Single adapts one *Server to the Directory interface — the unsharded
// deployment, unchanged in behavior from the pre-fleet API.
type Single struct {
	*Server
}

// NewSingle wraps an existing server as a Directory.
func NewSingle(s *Server) Single { return Single{Server: s} }

// Register implements Directory on the server's own AuthManager.
func (d Single) Register(tok Token, user string) { d.Server.Auth.Register(tok.String(), user) }

// Revoke implements Directory.
func (d Single) Revoke(tok Token) { d.Server.Auth.Revoke(tok.String()) }

// Locate implements Directory: a single server is shard 0.
func (d Single) Locate(user string) (int, bool) {
	if d.Server.SessionByUser(user) == nil {
		return 0, false
	}
	return 0, true
}

// Shards implements Directory.
func (d Single) Shards() int { return 1 }

// Sessions implements Directory.
func (d Single) Sessions() int { return d.Server.SessionCount() }

// BrokerConfig parameterizes a session-broker fleet.
type BrokerConfig struct {
	// Shards is the fleet size (0 means 1).
	Shards int
	// Routing selects placement: RouteHash (stable, never migrates on its
	// own) or RouteLeastLoaded (fills the emptiest shard and rebalances on
	// hotdesk).
	Routing RoutingPolicy
	// MigrateSlack tunes RouteLeastLoaded rebalancing: a hotdesk migrates
	// the session when its home shard holds at least this many more
	// sessions than the emptiest one. Zero takes the default (2); negative
	// disables automatic migration.
	MigrateSlack int
}

// RoutingPolicy selects how a broker places sessions on shards.
type RoutingPolicy = broker.Policy

// Routing policies.
const (
	// RouteHash pins each user to the shard their name hashes to.
	RouteHash = broker.RouteHash
	// RouteLeastLoaded balances by live session count and migrates on
	// hotdesk when the fleet is skewed.
	RouteLeastLoaded = broker.RouteLeastLoaded
)

// Broker is a session-broker fleet: N in-process server shards behind one
// attach point, with token-authenticated placement and live hotdesk
// migration (quiesce → snapshot → replay → redirect; the console stays
// dumb throughout). It implements Directory and the transport-facing
// SessionHandler, so a Fabric or UDP listener drives it exactly like a
// single server.
type Broker struct {
	*broker.Broker
}

// Register implements Directory with a typed token.
func (b *Broker) Register(tok Token, user string) { b.Broker.Register(tok.String(), user) }

// Revoke implements Directory.
func (b *Broker) Revoke(tok Token) { b.Broker.Revoke(tok.String()) }

// MigrateUser forcibly moves a user's session to a shard, redirecting any
// console currently displaying it.
func (b *Broker) MigrateUser(user string, shard int, now time.Duration) error {
	return b.Broker.MigrateUser(user, shard, now)
}

// NewBroker builds a session-broker fleet sending through one transport.
// Context-first: cancelling ctx closes the broker (sessions persist on
// their shards, as the architecture demands).
//
// Every shard inherits the broker-level options — WithLogger,
// WithSLOTracker, WithFlowControl, WithCostModel, WithFlightRecorder,
// WithParallelEncoding — from the one list passed here, so callers stop
// re-threading them per server. Two settings are virtualized per shard
// rather than inherited verbatim:
//
//   - Metrics: each shard gets a private registry (same-named server
//     gauges from different shards would clobber each other), and the
//     broker republishes the fleet view into the WithMetricsRegistry
//     registry (obs.Default if none) as slim_broker_* series with
//     shard-labeled session gauges. Per-shard registries remain reachable
//     via Shard(i).Obs().
//   - Session IDs: shard i issues IDs from a disjoint base so IDs stay
//     unique fleet-wide across migrations.
func NewBroker(ctx context.Context, cfg BrokerConfig, t Transport, newApp AppFactory, opts ...ServerOption) (*Broker, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	res := server.ResolveOptions(opts...)
	core, err := broker.New(broker.Config{
		Shards:       cfg.Shards,
		Policy:       cfg.Routing,
		MigrateSlack: cfg.MigrateSlack,
		Registry:     res.Registry,
		Logger:       res.Logger,
		NewShard: func(i int) *server.Server {
			shardOpts := make([]ServerOption, 0, len(opts)+2)
			shardOpts = append(shardOpts, opts...)
			shardOpts = append(shardOpts,
				server.WithRegistry(obs.NewRegistry(obs.DomainWall)),
				server.WithSessionIDBase(uint32(i)*broker.ShardIDSpace))
			return server.New(t, newApp, shardOpts...)
		},
	})
	if err != nil {
		return nil, err
	}
	b := &Broker{Broker: core}
	if ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			b.Close()
		}()
	}
	return b, nil
}
