package slim

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestContextCancelClosesUDPServer ties a daemon and a console to a
// context and checks cancellation tears both down — every background
// goroutine (serve loops, flow pacer, context watchers) joins.
func TestContextCancelClosesUDPServer(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := ListenAndServeContext(ctx, "127.0.0.1:0", WithTerminalApp(),
		WithFlowControl(FlowConfig{}), WithCostModel(SunRay1Costs()))
	if err != nil {
		t.Fatal(err)
	}
	srv.Server.Auth.Register("card-ctx", "ctxuser")
	con, err := DialConsoleContext(ctx, srv.Addr().String(), ConsoleConfig{Width: 160, Height: 120}, TokenOf("card-ctx"))
	if err != nil {
		t.Fatal(err)
	}
	if err := con.TypeString("hi"); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Close is idempotent with the context watcher's close; both block
	// until the goroutines have joined.
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after cancel: %v", err)
	}
	if err := con.Close(); err != nil {
		t.Fatalf("console Close after cancel: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancel+close", before, runtime.NumGoroutine())
}

// TestDialConsoleContextCanceled checks the dial path honors an
// already-dead context instead of connecting.
func TestDialConsoleContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialConsoleContext(ctx, "127.0.0.1:1", ConsoleConfig{Width: 64, Height: 64}, NoToken); err == nil {
		t.Fatal("dial with canceled context succeeded")
	}
}

// TestUDPServerConcurrentClose checks Close is safe to race with itself.
func TestUDPServerConcurrentClose(t *testing.T) {
	srv, err := ListenAndServe("127.0.0.1:0", WithTerminalApp())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() { done <- srv.Close() }()
	}
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("concurrent Close: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("concurrent Close hung")
		}
	}
}
