package slim

import (
	"net"
	"time"

	"slim/internal/protocol"
)

// Transport is the server→console datagram path, unified across the
// in-process fabric and the UDP daemon. Send routes one framed protocol
// message to a console by ID, Addr reports where consoles reach the
// transport, and Close releases its resources (idempotent).
type Transport interface {
	// Send delivers one wire-framed datagram to a console.
	Send(console string, wire []byte) error
	// Addr reports the transport's address ("fabric" for in-process).
	Addr() net.Addr
	// Close shuts the transport down. Safe to call more than once.
	Close() error
}

// SessionHandler is the server side a transport feeds console traffic
// into: one Server, or a Broker fronting a shard fleet — the transports
// drive either without knowing which. It is the narrow, datagram-facing
// subset of Directory.
type SessionHandler interface {
	// Handle processes one already-decoded console message.
	Handle(console string, msg Message, now time.Duration) error
	// HandleDatagram processes one raw console datagram.
	HandleDatagram(console string, wire []byte, now time.Duration) error
	// SessionOf reports the session a console is displaying (nil if none).
	SessionOf(console string) *Session
	// PumpFlows services flow governors at now, reporting when more paced
	// traffic becomes sendable.
	PumpFlows(now time.Duration) (next time.Duration, pending bool, err error)
	// FlowEnabled reports whether any session runs a send governor.
	FlowEnabled() bool
}

// InputSink is a console-side user: keystrokes, pointer motion, typed
// strings, and smart-card insertion, regardless of how the console is
// attached. Fabric desks (Desk) and UDP consoles implement it, sharing
// one implementation of the input helpers.
type InputSink interface {
	// SendKey delivers one key transition to the server.
	SendKey(code uint16, down bool) error
	// SendPointer delivers a mouse update.
	SendPointer(x, y uint16, buttons uint8) error
	// TypeString types a string (press + release per character).
	TypeString(s string) error
	// InsertCard presents a smart card, pulling the owner's session here
	// (§1.1's mobility model).
	InsertCard(token string) error
}

// Compile-time wiring checks: both transports satisfy Transport, both
// console attachments satisfy InputSink, and both server sides satisfy
// SessionHandler.
var (
	_ Transport      = (*Fabric)(nil)
	_ Transport      = (*UDPServer)(nil)
	_ Transport      = (*UDPBroker)(nil)
	_ InputSink      = Desk{}
	_ InputSink      = (*UDPConsole)(nil)
	_ SessionHandler = (*Server)(nil)
	_ SessionHandler = (*Broker)(nil)
)

// inputPort is the one shared InputSink implementation. A transport
// supplies deliver (how a console→server message reaches the server) and
// card (how a card insertion is initiated — the console stamps its own
// token state first); every input helper is derived from those two.
type inputPort struct {
	deliver func(msg Message) error
	card    func(token string) error
}

func (p inputPort) SendKey(code uint16, down bool) error {
	return p.deliver(&protocol.KeyEvent{Code: code, Down: down})
}

func (p inputPort) SendPointer(x, y uint16, buttons uint8) error {
	return p.deliver(&protocol.PointerEvent{X: x, Y: y, Buttons: buttons})
}

func (p inputPort) TypeString(s string) error {
	for i := 0; i < len(s); i++ {
		if err := p.SendKey(uint16(s[i]), true); err != nil {
			return err
		}
		if err := p.SendKey(uint16(s[i]), false); err != nil {
			return err
		}
	}
	return nil
}

func (p inputPort) InsertCard(token string) error {
	return p.card(token)
}
