package slim

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
)

// Token is a smart-card credential: the opaque string a console presents
// when a card is inserted (§1.1) and the key the directory's
// authentication manager resolves to a user. Typing it keeps credentials
// from being confused with the other bare strings in the attach API
// (console IDs, user names, addresses) — the motivation for replacing the
// old `cardToken string` parameters.
//
// The zero Token (NoToken) is "no card inserted": DialConsoleContext with
// NoToken boots to the login screen.
type Token struct {
	s string
}

// NoToken is the absent credential: a console booting with no card.
var NoToken = Token{}

// TokenOf wraps an existing card-token string (cards enrolled outside this
// process, config files, the slimd -card flag).
func TokenOf(s string) Token { return Token{s: s} }

// IssueToken mints a fresh 128-bit random credential, hex encoded — the
// card-burning side of the directory.
func IssueToken() (Token, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return NoToken, fmt.Errorf("slim: issue token: %w", err)
	}
	return Token{s: hex.EncodeToString(b[:])}, nil
}

// MustIssueToken is IssueToken for tests and examples; it panics if the
// system's randomness source fails.
func MustIssueToken() Token {
	t, err := IssueToken()
	if err != nil {
		panic(err)
	}
	return t
}

// String reveals the credential for the wire and the AuthManager boundary,
// both of which carry card tokens as strings.
func (t Token) String() string { return t.s }

// IsZero reports whether the token is NoToken.
func (t Token) IsZero() bool { return t.s == "" }

// Equal compares credentials in constant time.
func (t Token) Equal(o Token) bool {
	return subtle.ConstantTimeCompare([]byte(t.s), []byte(o.s)) == 1
}
