package slim

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"slim/internal/obs"
	"slim/internal/obs/flight"
	"slim/internal/obs/slo"
)

// degradedTransport interposes a controllable bad link between server and
// fabric: when armed, each display datagram (first transmissions and
// retransmits alike) is held for the configured delay before delivery —
// loss injection itself lives in the fabric (SetLoss), so NACK recovery
// takes the same slow wire the original paint did.
type degradedTransport struct {
	*Fabric
	delayNs atomic.Int64
}

func (d *degradedTransport) Send(console string, wire []byte) error {
	if ns := d.delayNs.Load(); ns > 0 && isDisplayDatagram(wire) {
		time.Sleep(time.Duration(ns))
	}
	return d.Fabric.Send(console, wire)
}

// sloStatus scrapes and parses the tracker's /debug/slo endpoint.
func sloStatus(t *testing.T, ts *httptest.Server) slo.Status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st slo.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/debug/slo is not valid JSON: %v", err)
	}
	return st
}

// TestSLOEndToEnd drives a real session over a link that degrades and
// recovers, and asserts the whole SLO-engine contract on /debug/slo: the
// fleet state walks OK → DEGRADED → BREACHING as the short/mid windows
// fill and drain, and the breaches caused by injected loss and wire delay
// are attributed to the WIRE stage — in the live blame counters and in the
// breach dumps alike.
func TestSLOEndToEnd(t *testing.T) {
	const (
		target = 50 * time.Millisecond
		delay  = 80 * time.Millisecond // per display datagram when degraded
	)
	reg := obs.NewRegistry(obs.DomainWall)
	rec := flight.New(obs.DomainWall).Instrument(reg)
	rec.SetThreshold(target)
	rec.SetDumpGap(0) // every breach dumps: the blame table wants them all
	dir := t.TempDir()
	rec.SetDumpDir(dir)
	// Compressed windows so the three states are reachable in seconds: a
	// 400 ms detection window, 1.6 s confirmation, 6.4 s memory.
	trk := slo.New(obs.DomainWall, slo.Config{
		Target: target,
		Short:  400 * time.Millisecond,
		Mid:    1600 * time.Millisecond,
		Long:   6400 * time.Millisecond,
	}).Instrument(reg)

	fabric := NewFabric()
	link := &degradedTransport{Fabric: fabric}
	srv := NewServer(link, WithTerminalApp()).Instrument(reg).WithFlight(rec).WithSLOTracker(trk)
	srv.Auth.Register("card-alice", "alice")
	con, err := NewConsole(ConsoleConfig{Width: 320, Height: 240, Obs: reg, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk-1", con, srv)
	if err := fabric.Boot("desk-1", "card-alice"); err != nil {
		t.Fatal(err)
	}
	sess := srv.SessionByUser("alice")
	if sess == nil || sess.SLO() == nil {
		t.Fatal("session not SLO-instrumented")
	}

	ts := httptest.NewServer(trk.Handler())
	defer ts.Close()

	// Phase 1 — healthy link: keystrokes paint in microseconds.
	if err := fabric.TypeString("desk-1", "all quiet on the fabric"); err != nil {
		t.Fatal(err)
	}
	if st := sloStatus(t, ts); st.State != "OK" {
		t.Fatalf("healthy state = %s, want OK (windows %+v)", st.State, st.Windows)
	}

	// Phase 2 — a short outage, then recovery: every display datagram slows
	// to ~delay and every second one is lost outright, forcing NACK
	// retransmits over the same slow wire.
	degrade := func(on bool) {
		if on {
			link.delayNs.Store(int64(delay))
			fabric.SetLoss(2)
		} else {
			link.delayNs.Store(0)
			fabric.SetLoss(0)
		}
	}
	degrade(true)
	if err := fabric.TypeString("desk-1", "ouch"); err != nil {
		t.Fatal(err)
	}
	degrade(false)
	// Clean traffic until the short window drains while the mid window
	// still remembers the outage: DEGRADED, the "too young or already
	// over" state.
	deadline := time.Now().Add(3 * time.Second)
	var st slo.Status
	for {
		if err := fabric.TypeString("desk-1", "x"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
		if st = sloStatus(t, ts); st.State == "DEGRADED" || time.Now().After(deadline) {
			break
		}
	}
	if st.State != "DEGRADED" {
		t.Fatalf("post-outage state = %s, want DEGRADED (windows %+v)", st.State, st.Windows)
	}

	// Phase 3 — sustained outage: breaches fill short AND mid windows.
	degrade(true)
	if err := fabric.TypeString("desk-1", "still breaching..."); err != nil {
		t.Fatal(err)
	}
	st = sloStatus(t, ts)
	degrade(false)
	if st.State != "BREACHING" {
		t.Fatalf("sustained-outage state = %s, want BREACHING (windows %+v)", st.State, st.Windows)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].User != "alice" {
		t.Fatalf("sessions = %+v, want alice", st.Sessions)
	}
	if st.Sessions[0].State != "BREACHING" {
		t.Errorf("per-session state = %s, want BREACHING", st.Sessions[0].State)
	}

	// Attribution, via the live blame counters: every breach happened on a
	// slow or lossy wire, so at least 90% of the blame must be WIRE.
	var wire, total int64
	for stage, n := range st.Blame {
		total += n
		if stage == "wire" {
			wire = n
		}
	}
	if total == 0 {
		t.Fatal("no breach blame recorded")
	}
	if frac := float64(wire) / float64(total); frac < 0.9 {
		t.Errorf("WIRE blame = %d/%d (%.0f%%), want >= 90%% (blame %v)",
			wire, total, 100*frac, st.Blame)
	}
	if st.Sessions[0].Blame["wire"] != wire {
		t.Errorf("session blame %v does not match fleet %v", st.Sessions[0].Blame, st.Blame)
	}

	// Attribution, via the dumps: the committed verdicts must tell the same
	// story, with loss evidence on the chains whose datagrams vanished.
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-sess*.json"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no breach dumps in %s (err=%v)", dir, err)
	}
	var table flight.BlameTable
	for _, path := range dumps {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		d, rerr := flight.ReadDump(f)
		f.Close()
		if rerr != nil {
			t.Fatalf("%s: %v", path, rerr)
		}
		if d.Verdict == nil {
			t.Fatalf("%s has no verdict", path)
		}
		table.Add(d)
	}
	if table.Share(flight.StageWire) < 0.9 {
		t.Errorf("dump WIRE share = %.0f%% of %d, want >= 90%%",
			100*table.Share(flight.StageWire), table.Total)
	}
	if table.Loss == 0 {
		t.Error("no dump carries loss evidence despite injected drops")
	}

	// The registry view agrees: breach counters moved, burn gauges are live.
	snap := reg.Snapshot()
	if snap.Counters["slim_slo_events_total"] == 0 || snap.Counters["slim_slo_breaches_total"] == 0 {
		t.Error("slo counters not published")
	}
	if snap.Counters[`slim_slo_blame_total{stage="wire"}`] != wire {
		t.Errorf("blame counter = %d, want %d",
			snap.Counters[`slim_slo_blame_total{stage="wire"}`], wire)
	}

	// Terminate evicts the session from /debug/slo.
	if err := srv.Terminate("alice"); err != nil {
		t.Fatal(err)
	}
	if st := sloStatus(t, ts); len(st.Sessions) != 0 {
		t.Errorf("sessions after Terminate = %+v, want none", st.Sessions)
	}
}
