module slim

go 1.22
