// Command slimtrace generates, inspects, and summarizes SLIM session
// traces — the §3.1 methodology as a tool.
//
// Usage:
//
//	slimtrace gen -app netscape -user 3 -minutes 10 -o netscape.trace
//	slimtrace stat -i netscape.trace
//	slimtrace json -i netscape.trace            # dump as JSON
//	slimtrace replay -i netscape.trace -kbps 1000   # Figure 6 on any trace
//	slimtrace flight -i flight-sess1-1.json         # inspect a breach dump
//	slimtrace flight -i dump.json -perfetto out.json -o breach.trace
//	slimtrace blame -dir ./dumps                    # aggregate breach blame
//	slimtrace blame -i flight-sess1-1.json -reattribute
//	slimtrace capture -i run.slimcap                # per-command wire tables
//	slimtrace capture -i run.slimcap -perfetto wire.json -o run.trace
//	slimtrace netqual -i run.slimcap                # per-session path estimates
//	slimtrace incident -dir ./incidents             # list incident bundles
//	slimtrace incident -i incidents/incident-...    # summarize one bundle
//
// The flight subcommand reads a flight-recorder breach dump (written by a
// server whose input-to-paint latency crossed the breach threshold, see
// internal/obs/flight), walks its causal chains, and can convert it to
// either a Perfetto trace (-perfetto) or a §3.1 offline trace (-o) so
// dumps flow through the same stat/replay analysis path as generated
// workloads.
//
// The blame subcommand aggregates breach dumps — one (-i) or a directory
// of them (-dir) — into the per-stage attribution table: how many breaches
// each pipeline stage (ENCODE, QUEUE, WIRE, DECODE, PAINT) dominated, its
// blame share, and average latencies. Dumps carry the verdict stamped at
// breach time; -reattribute re-walks each dump's causal chain instead,
// useful after attribution-logic changes or on dumps from older recorders.
//
// The capture subcommand decodes a .slimcap wire capture (recorded by
// slimd -capture or any enabled capture ring; format in PROTOCOL.md) and
// prints per-command-type count/byte/pixel/bandwidth tables in the shape
// of the paper's Tables 2-3, measured on the wire rather than modelled.
//
// The netqual subcommand replays a .slimcap capture offline through the
// passive path estimators (internal/obs/netqual): down-direction display
// datagrams re-arm the send ring, up-direction STATUS/NACK traffic yields
// RTT/jitter/loss samples, and the result is a per-console path table —
// the same numbers a live server exports as slim_netqual_*, recovered
// from a spool after the fact.
// -perfetto exports the datagrams as instant events on down/up tracks
// that load alongside a flight export; -o converts the capture to a §3.1
// offline trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"slim/internal/netsim"
	"slim/internal/obs/capture"
	"slim/internal/obs/flight"
	"slim/internal/obs/hostmon"
	"slim/internal/obs/incident"
	"slim/internal/obs/netqual"
	"slim/internal/protocol"
	"slim/internal/stats"
	"slim/internal/trace"
	"slim/internal/workload"
)

// usage prints the subcommand synopsis to stderr and exits non-zero, so
// scripts and CI catch typos instead of silently succeeding.
func usage(reason string) {
	if reason != "" {
		fmt.Fprintf(os.Stderr, "slimtrace: %s\n", reason)
	}
	fmt.Fprint(os.Stderr, `usage: slimtrace <subcommand> [flags]

subcommands:
  gen      generate a synthetic §3.1 workload trace
  stat     summarize a trace (inputs, pixels/bytes per event, bandwidth)
  json     dump a trace as JSON
  replay   replay a trace over a simulated constrained link (Figure 6)
  flight   inspect a flight-recorder breach dump
  blame    aggregate breach dumps into a per-stage attribution table
  capture  decode a .slimcap wire capture into per-command tables
  netqual  replay a .slimcap capture through the passive path estimators
  incident list or summarize incident bundles (slimd -incident-dir)

run 'slimtrace <subcommand> -h' for flags
`)
	os.Exit(2)
}

func main() {
	log.SetPrefix("slimtrace: ")
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage("missing subcommand")
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	case "json":
		dumpJSON(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "flight":
		flightCmd(os.Args[2:])
	case "blame":
		blameCmd(os.Args[2:])
	case "capture":
		captureCmd(os.Args[2:])
	case "netqual":
		netqualCmd(os.Args[2:])
	case "incident":
		incidentCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage("")
	default:
		usage(fmt.Sprintf("unknown subcommand %q", os.Args[1]))
	}
}

// captureCmd decodes a .slimcap wire capture into the paper's Tables 2-3
// shape and optionally exports it for Perfetto or offline trace analysis.
func captureCmd(args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	in := fs.String("i", "", "input .slimcap capture file")
	perfetto := fs.String("perfetto", "", "write Chrome/Perfetto trace-event JSON here")
	out := fs.String("o", "", "write a binary §3.1 trace here (for slimtrace stat/replay)")
	mustParse(fs, args)
	if *in == "" {
		log.Fatal("capture: -i is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	h, recs, err := capture.ReadCapture(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	rep := capture.BuildReport(h, recs)
	if err := rep.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *perfetto != "" {
		pf, err := os.Create(*perfetto)
		if err != nil {
			log.Fatal(err)
		}
		err = capture.WritePerfetto(pf, h, recs)
		if cerr := pf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Perfetto trace to %s (load at ui.perfetto.dev)\n", *perfetto)
	}
	if *out != "" {
		tr := trace.FromCapture(recs)
		tf, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		err = tr.WriteBinary(tf)
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote offline trace to %s (%d records)\n", *out, len(tr.Records))
	}
}

// netqualCmd replays a .slimcap wire capture through the passive path
// estimators and prints the per-console path table a live server would
// export as slim_netqual_* — SRTT from STATUS acks against replayed
// sends, jitter from STATUS inter-arrivals, loss from NACK ranges and
// cumulative console drop counters, goodput from acked bytes.
func netqualCmd(args []string) {
	fs := flag.NewFlagSet("netqual", flag.ExitOnError)
	in := fs.String("i", "", "input .slimcap capture file")
	mustParse(fs, args)
	if *in == "" {
		log.Fatal("netqual: -i is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	h, recs, err := capture.ReadCapture(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// The tracker runs in the capture's own clock domain so window reads
	// line up with record timestamps whether the spool came from a wall
	// transport or a simulated link.
	tr := netqual.New(h.Domain, netqual.DefaultConfig())
	tr.SetEnabled(true)

	type replaySession struct {
		console string
		nq      *netqual.PathSession
		maxSeq  uint32 // high-water display seq, for offline retransmit detection
		down    int64  // display datagrams replayed
		up      int64  // STATUS/NACK/grant messages replayed
	}
	sessions := map[string]*replaySession{}
	nextID := uint32(1)
	lookup := func(console string) *replaySession {
		if console == "" {
			console = "?"
		}
		rs, ok := sessions[console]
		if !ok {
			rs = &replaySession{console: console, nq: tr.Session(nextID, console)}
			sessions[console] = rs
			nextID++
		}
		return rs
	}

	var sizeOnly, undecodable int
	var lastT time.Duration
	for _, rec := range recs {
		if rec.T > lastT {
			lastT = rec.T
		}
		if rec.Wire == nil {
			sizeOnly++ // netsim links spool sizes, not payloads
			continue
		}
		seqs, msgs, err := protocol.DecodeAny(rec.Wire)
		if err != nil {
			undecodable++
			continue
		}
		rs := lookup(rec.Console)
		switch rec.Dir {
		case capture.DirDown:
			// Split the datagram's wire size evenly across its display
			// commands; header overhead is noise at goodput scale.
			display := 0
			for _, m := range msgs {
				switch m.Type() {
				case protocol.TypeSet, protocol.TypeBitmap, protocol.TypeFill,
					protocol.TypeCopy, protocol.TypeCSCS, protocol.TypeCachePaint,
					protocol.TypeAudio:
					display++
				}
			}
			for i, m := range msgs {
				switch m.Type() {
				case protocol.TypeSet, protocol.TypeBitmap, protocol.TypeFill,
					protocol.TypeCopy, protocol.TypeCSCS, protocol.TypeCachePaint,
					protocol.TypeAudio:
					seq := seqs[i]
					// Offline we cannot see the governor's retransmit flag;
					// a seq at or below the high-water mark is a replay.
					retrans := seq <= rs.maxSeq && rs.maxSeq != 0
					if seq > rs.maxSeq {
						rs.maxSeq = seq
					}
					rs.nq.OnSend(rec.T, seq, rec.Size/display, retrans)
					rs.down++
				case protocol.TypeBandwidthRequest:
					rs.nq.OnProbe(rec.T)
				}
			}
		case capture.DirUp:
			for _, m := range msgs {
				switch v := m.(type) {
				case *protocol.Status:
					rs.nq.OnStatus(rec.T, v.LastSeq, v.Dropped)
					rs.up++
				case *protocol.Nack:
					rs.nq.OnNack(rec.T, v.From, v.To)
					rs.up++
				case *protocol.BandwidthGrant:
					rs.nq.OnGrant(rec.T)
					rs.up++
				}
			}
		}
	}

	names := make([]string, 0, len(sessions))
	for name := range sessions {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("capture: %d records, %d consoles, span %s\n",
		len(recs), len(sessions), lastT.Round(time.Millisecond))
	if sizeOnly > 0 {
		fmt.Printf("  %d size-only records skipped (no payload to decode)\n", sizeOnly)
	}
	if undecodable > 0 {
		fmt.Printf("  %d undecodable records skipped\n", undecodable)
	}
	fmt.Printf("\n%-16s %8s %9s %9s %9s %7s %7s %10s %7s %5s\n",
		"console", "srtt", "rttvar", "minrtt", "jitter",
		"loss5s", "loss1m", "goodput", "sends", "acks")
	for _, name := range names {
		rs := sessions[name]
		nq := rs.nq
		fmt.Printf("%-16s %8s %9s %9s %9s %6.2f%% %6.2f%% %10s %7d %5d\n",
			rs.console,
			fmtPathDur(nq.SRTT()), fmtPathDur(nq.RTTVar()),
			fmtPathDur(nq.MinRTT()), fmtPathDur(nq.Jitter()),
			nq.LossShortAt(lastT)*100, nq.LossLongAt(lastT)*100,
			fmtBps(nq.GoodputAt(lastT)), rs.down, nq.Samples())
	}
}

// fmtPathDur renders an estimator duration, dashing out the "no samples
// yet" zero so empty paths read as unknown rather than instantaneous.
func fmtPathDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(10 * time.Microsecond).String()
}

// fmtBps renders a bits-per-second rate with an adaptive unit.
func fmtBps(bps float64) string {
	switch {
	case bps <= 0:
		return "-"
	case bps >= 1e6:
		return fmt.Sprintf("%.2fMb/s", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1fkb/s", bps/1e3)
	default:
		return fmt.Sprintf("%.0fb/s", bps)
	}
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	app := fs.String("app", "netscape", "application model: photoshop|netscape|framemaker|pim")
	user := fs.Int("user", 0, "simulated user index (varies the seed)")
	minutes := fs.Int("minutes", 10, "session length")
	seed := fs.Uint64("seed", 1999, "corpus seed")
	out := fs.String("o", "", "output file (binary trace); default <app>-<user>.trace")
	mustParse(fs, args)

	a, err := workload.ParseApp(*app)
	if err != nil {
		log.Fatal(err)
	}
	sess := workload.NewSession(a, *user, *seed)
	tr := sess.Run(time.Duration(*minutes) * time.Minute)
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%d.trace", *app, *user)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteBinary(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d records, %d input events, %.1f minutes\n",
		path, len(tr.Records), tr.InputCount(), tr.Duration.Minutes())
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadBinary(f)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	mustParse(fs, args)
	if *in == "" {
		log.Fatal("stat: -i is required")
	}
	tr := load(*in)
	fmt.Printf("app=%s user=%d duration=%.1f min\n", tr.App, tr.User, tr.Duration.Minutes())
	fmt.Printf("input events: %d (%.2f/sec)\n", tr.InputCount(),
		float64(tr.InputCount())/tr.Duration.Seconds())
	px := tr.PixelsPerEvent()
	by := tr.BytesPerEvent()
	if px.N() > 0 {
		fmt.Printf("pixels/event: p50=%.0f p90=%.0f p99=%.0f\n",
			px.Percentile(.5), px.Percentile(.9), px.Percentile(.99))
		fmt.Printf("bytes/event:  p50=%.0f p90=%.0f p99=%.0f\n",
			by.Percentile(.5), by.Percentile(.9), by.Percentile(.99))
	}
	fmt.Printf("average SLIM bandwidth: %.3f Mbps\n", tr.AvgBandwidthBps()/1e6)
	fmt.Println("per-command bytes:")
	for cmd, pe := range tr.CommandBytes() {
		fmt.Printf("  %-7s %12d bytes %14d pixels\n", cmd, pe.Bytes, pe.Pixels)
	}
}

func dumpJSON(args []string) {
	fs := flag.NewFlagSet("json", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	mustParse(fs, args)
	if *in == "" {
		log.Fatal("json: -i is required")
	}
	if err := load(*in).WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// replay retransmits a trace's display packets over a simulated
// constrained link and reports the per-packet delays added relative to the
// 100 Mbps reference — the §5.4 / Figure 6 methodology applied to any
// captured session.
func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file")
	kbps := fs.Float64("kbps", 1000, "constrained link rate in Kbps")
	mustParse(fs, args)
	if *in == "" {
		log.Fatal("replay: -i is required")
	}
	tr := load(*in)
	pkts := tr.Packets(0)
	if len(pkts) == 0 {
		log.Fatal("replay: trace has no display packets")
	}
	ref := &netsim.Link{Bps: netsim.Rate100Mbps}
	slow := &netsim.Link{Bps: *kbps * 1e3}
	cdf := stats.NewCDF(len(pkts))
	for _, d := range netsim.AddedDelays(pkts, ref, slow) {
		cdf.Add(d.Seconds())
	}
	fmt.Printf("%s: %d packets replayed at %.0f Kbps (reference 100 Mbps)\n",
		tr.App, len(pkts), *kbps)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		fmt.Printf("  p%02.0f added delay: %v\n", p*100,
			time.Duration(cdf.Percentile(p)*float64(time.Second)).Round(10*time.Microsecond))
	}
	fmt.Printf("  fraction above 100ms (noticeable): %.3f\n", 1-cdf.At(0.100))
}

// flightCmd inspects a flight-recorder breach dump: a per-kind event
// census, the causal chain of the breaching window, and optional exports
// to Perfetto (-perfetto) and the offline trace format (-o).
func flightCmd(args []string) {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	in := fs.String("i", "", "input breach dump (flight-sess*.json)")
	perfetto := fs.String("perfetto", "", "write Chrome/Perfetto trace-event JSON here")
	out := fs.String("o", "", "write a binary §3.1 trace here (for slimtrace stat/replay)")
	mustParse(fs, args)
	if *in == "" {
		log.Fatal("flight: -i is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	d, err := flight.ReadDump(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("session %d (%s clock): input-to-paint %v breached threshold %v\n",
		d.Session, d.Domain,
		time.Duration(d.LatencyNs).Round(time.Microsecond),
		time.Duration(d.ThresholdNs))
	fmt.Printf("captured %s, %d events in the trailing %v\n",
		d.CapturedAt.Format(time.RFC3339), len(d.Events),
		time.Duration(d.WindowNs))

	kinds := make(map[flight.Kind]int)
	chains := make(map[uint64]int)
	for _, ev := range d.Events {
		kinds[ev.Kind]++
		if ev.Cause != 0 {
			chains[ev.Cause]++
		}
	}
	fmt.Printf("event census (%d causal chains):\n", len(chains))
	for k := flight.EvInput; k <= flight.EvBreach; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-8s %6d\n", k, kinds[k])
		}
	}

	// Walk the last complete chain — input through paint — seq by seq.
	var last uint64
	for _, ev := range d.Events {
		if ev.Kind == flight.EvInput {
			last = ev.Cause
		}
	}
	if last != 0 {
		fmt.Printf("last causal chain (id %d):\n", last)
		var t0 time.Duration
		for _, ev := range d.Events {
			if ev.Cause != last {
				continue
			}
			if t0 == 0 {
				t0 = ev.T
			}
			fmt.Printf("  +%-12v %-8s", (ev.T - t0).Round(time.Microsecond), ev.Kind)
			if ev.Seq != 0 {
				fmt.Printf(" seq=%d", ev.Seq)
			}
			if ev.Cmd != 0 {
				fmt.Printf(" %s", ev.Cmd)
			}
			fmt.Println()
		}
	}

	if *perfetto != "" {
		pf, err := os.Create(*perfetto)
		if err != nil {
			log.Fatal(err)
		}
		err = flight.WritePerfetto(pf, d.Session, d.Events)
		if cerr := pf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Perfetto trace to %s (load at ui.perfetto.dev)\n", *perfetto)
	}
	if *out != "" {
		tr := trace.FromFlightDump(d)
		tf, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		err = tr.WriteBinary(tf)
		if cerr := tf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote offline trace to %s (%d records)\n", *out, len(tr.Records))
	}
}

// blameCmd aggregates breach dumps into the per-stage attribution table.
// Each dump carries the verdict computed at breach time; -reattribute
// ignores it and re-walks the causal chain from the recorded events, the
// path for dumps written before attribution existed (or after the
// attribution logic changed).
func blameCmd(args []string) {
	fs := flag.NewFlagSet("blame", flag.ExitOnError)
	in := fs.String("i", "", "one breach dump (flight-sess*.json)")
	dir := fs.String("dir", "", "directory of breach dumps to aggregate")
	reattr := fs.Bool("reattribute", false, "re-walk each dump's causal chain instead of trusting the stamped verdict")
	perSess := fs.Bool("sessions", false, "also print one table per session")
	mustParse(fs, args)
	if (*in == "") == (*dir == "") {
		log.Fatal("blame: exactly one of -i or -dir is required")
	}
	paths := []string{*in}
	if *dir != "" {
		var err error
		paths, err = filepath.Glob(filepath.Join(*dir, "flight-sess*.json"))
		if err != nil {
			log.Fatal(err)
		}
		if len(paths) == 0 {
			log.Fatalf("blame: no flight-sess*.json dumps in %s", *dir)
		}
		sort.Strings(paths)
	}

	var total flight.BlameTable
	bySession := make(map[uint32]*flight.BlameTable)
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		d, err := flight.ReadDump(f)
		f.Close()
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		st := bySession[d.Session]
		if st == nil {
			st = &flight.BlameTable{}
			bySession[d.Session] = st
		}
		if *reattr {
			v := reattribute(d)
			total.AddVerdict(v, d.LatencyNs)
			st.AddVerdict(v, d.LatencyNs)
		} else {
			total.Add(d)
			st.Add(d)
		}
	}

	fmt.Printf("%d dumps from %d sessions\n", len(paths), len(bySession))
	if err := total.Format(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *perSess && len(bySession) > 1 {
		ids := make([]uint32, 0, len(bySession))
		for id := range bySession {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fmt.Printf("\nsession %d:\n", id)
			if err := bySession[id].Format(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// reattribute re-walks a dump's events: the chain comes from the stamped
// verdict (or the last INPUT in the window), the as-of time from the
// BREACH marker (or the newest event). Host stall windows recorded in the
// dump re-enter the verdict, so HOST attribution survives offline replay.
func reattribute(d *flight.Dump) flight.Verdict {
	var chain, lastInput uint64
	if d.Verdict != nil {
		chain = d.Verdict.Chain
	}
	var asOf time.Duration
	for _, ev := range d.Events {
		if ev.T > asOf {
			asOf = ev.T
		}
		switch ev.Kind {
		case flight.EvInput:
			lastInput = ev.Cause
		case flight.EvBreach:
			if chain == 0 && ev.Cause != 0 {
				chain = ev.Cause
			}
		}
	}
	if chain == 0 {
		chain = lastInput
	}
	return flight.AttributeWithHost(d.Events, chain, asOf, d.HostWindows)
}

// incidentCmd lists a bundle directory (-dir) or summarizes one bundle
// (-i): the manifest, the collected files, the host state at capture, the
// top CPU consumers from the bundled profile window, and the verdicts of
// the bundled flight dumps.
func incidentCmd(args []string) {
	fs := flag.NewFlagSet("incident", flag.ExitOnError)
	dir := fs.String("dir", "", "incident-bundle directory (slimd -incident-dir) to list")
	in := fs.String("i", "", "one bundle directory (incident-*) to summarize")
	mustParse(fs, args)
	if (*in == "") == (*dir == "") {
		log.Fatal("incident: exactly one of -i or -dir is required")
	}
	if *dir != "" {
		bundles, err := incident.List(*dir)
		if err != nil {
			log.Fatal(err)
		}
		if len(bundles) == 0 {
			fmt.Printf("no incident bundles in %s\n", *dir)
			return
		}
		fmt.Printf("%-44s %-20s %-8s %-6s %s\n", "BUNDLE", "CREATED", "TRIGGER", "FILES", "REASON")
		for _, m := range bundles {
			fmt.Printf("%-44s %-20s %-8s %-6d %s\n", m.Name,
				m.CreatedAt.UTC().Format("2006-01-02T15:04:05Z"), m.Trigger,
				len(m.Files), m.Reason)
		}
		return
	}

	m, err := incident.ReadManifest(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bundle %s (v%d)\n", m.Name, m.Version)
	fmt.Printf("  trigger: %s (%s), created %s\n", m.Reason, m.Trigger,
		m.CreatedAt.UTC().Format(time.RFC3339))
	names := make([]string, 0, len(m.Files))
	for n := range m.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("  files (%d):\n", len(names))
	for _, n := range names {
		fmt.Printf("    %-28s %10d bytes\n", n, m.Files[n])
	}
	if len(m.Errors) > 0 {
		fmt.Printf("  collector errors (%d):\n", len(m.Errors))
		errNames := make([]string, 0, len(m.Errors))
		for n := range m.Errors {
			errNames = append(errNames, n)
		}
		sort.Strings(errNames)
		for _, n := range errNames {
			fmt.Printf("    %-28s %s\n", n, m.Errors[n])
		}
	}

	// Host state at capture time.
	if raw, err := os.ReadFile(filepath.Join(*in, "hostmon.json")); err == nil {
		var st hostmon.Status
		if err := json.Unmarshal(raw, &st); err == nil {
			fmt.Printf("  host at capture: heap %.1f MiB, %d goroutines, worst GC pause %v, tick lag %v\n",
				float64(st.Last.HeapBytes)/(1<<20), st.Last.Goroutines,
				time.Duration(st.Last.WorstGCPause).Round(time.Microsecond),
				time.Duration(st.Last.TickLag).Round(time.Microsecond))
			if len(st.Windows) > 0 {
				fmt.Printf("  live stall windows: %d\n", len(st.Windows))
			}
		}
	}

	// Top CPU consumers from the bundled profile window.
	if raw, err := os.ReadFile(filepath.Join(*in, "cpu.pprof")); err == nil {
		if self, err := hostmon.SelfTimeByPkg(raw); err == nil && len(self) > 0 {
			type ps struct {
				pkg string
				ns  int64
			}
			tops := make([]ps, 0, len(self))
			for p, ns := range self {
				tops = append(tops, ps{p, ns})
			}
			sort.Slice(tops, func(i, j int) bool { return tops[i].ns > tops[j].ns })
			if len(tops) > 8 {
				tops = tops[:8]
			}
			fmt.Println("  top self-time by package (bundled profile window):")
			for _, t := range tops {
				fmt.Printf("    %-40s %v\n", t.pkg, time.Duration(t.ns).Round(time.Millisecond))
			}
		}
	}

	// Verdicts of the bundled flight dumps.
	dumps, _ := filepath.Glob(filepath.Join(*in, "flight", "flight-sess*.json"))
	if len(dumps) > 0 {
		sort.Strings(dumps)
		var table flight.BlameTable
		for _, path := range dumps {
			f, err := os.Open(path)
			if err != nil {
				continue
			}
			d, err := flight.ReadDump(f)
			f.Close()
			if err != nil {
				continue
			}
			if d.Verdict != nil {
				table.Add(d)
			} else {
				table.AddVerdict(reattribute(d), d.LatencyNs)
			}
		}
		fmt.Printf("  bundled flight dumps (%d):\n", len(dumps))
		if err := table.Format(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func mustParse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
}
