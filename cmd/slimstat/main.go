// Command slimstat is a live terminal monitor for a slimd started with
// -debug: it polls the daemon's /debug/vars JSON snapshot and renders a
// one-line-per-interval summary of interactive performance in the paper's
// terms — input-to-paint percentiles against the §3 human-perception
// thresholds, display command and byte rates, and drop percentage.
//
// Usage:
//
//	slimd -debug :6060 &
//	slimstat -addr localhost:6060
//
// Output:
//
//	15:04:05  paint p50 0.8ms p95 3.1ms p99 9.7ms | 412 cmd/s | 38.1 KB/s | drop 0.00% | 2 sessions
//
// Each line covers exactly one polling interval (default 1 s), so the
// percentiles are windowed, not since-boot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"slim/internal/obs"
)

func main() {
	log.SetPrefix("slimstat: ")
	log.SetFlags(0)
	addr := flag.String("addr", "localhost:6060", "slimd debug endpoint (host:port)")
	interval := flag.Duration("interval", time.Second, "polling interval")
	count := flag.Int("n", 0, "stop after this many lines (0 = run until interrupted)")
	flag.Parse()

	url := "http://" + strings.TrimPrefix(*addr, "http://") + "/debug/vars"
	client := &http.Client{Timeout: *interval}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()

	prev, err := scrape(client, url)
	if err != nil {
		log.Fatal(err)
	}
	lines := 0
	for {
		select {
		case <-sig:
			return
		case <-tick.C:
		}
		cur, err := scrape(client, url)
		if err != nil {
			log.Print(err)
			continue
		}
		fmt.Println(summarize(prev, cur, *interval))
		prev = cur
		lines++
		if *count > 0 && lines >= *count {
			return
		}
	}
}

// scrape fetches the domain-keyed snapshots served at /debug/vars.
func scrape(client *http.Client, url string) (map[string]obs.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	var snaps map[string]obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return snaps, nil
}

// summarize renders one interval's activity as a single line.
func summarize(prev, cur map[string]obs.Snapshot, interval time.Duration) string {
	p, c := prev["wall"], cur["wall"]
	secs := interval.Seconds()

	paint := c.Histograms["slim_input_to_paint_seconds"].
		Delta(p.Histograms["slim_input_to_paint_seconds"])

	cmds := c.CounterSum("slim_encoder_commands_total") - p.CounterSum("slim_encoder_commands_total")
	bytes := c.CounterSum("slim_encoder_wire_bytes_total") - p.CounterSum("slim_encoder_wire_bytes_total")

	// Loss across whichever transports are active: fabric drops, console
	// decode drops, UDP send errors.
	drops := delta(p, c, "slim_fabric_dropped_total") +
		delta(p, c, "slim_console_dropped_total") +
		delta(p, c, "slim_udp_tx_errors_total")
	delivered := delta(p, c, "slim_fabric_delivered_total") +
		delta(p, c, "slim_udp_tx_datagrams_total")
	dropPct := 0.0
	if drops+delivered > 0 {
		dropPct = 100 * float64(drops) / float64(drops+delivered)
	}

	return fmt.Sprintf("%s  paint p50 %s p95 %s p99 %s | %.0f cmd/s | %.1f KB/s | drop %.2f%% | %d sessions",
		time.Now().Format("15:04:05"),
		ms(paint.P50), ms(paint.P95), ms(paint.P99),
		float64(cmds)/secs, float64(bytes)/1024/secs,
		dropPct, c.Gauges["slim_sessions"])
}

func delta(p, c obs.Snapshot, name string) int64 {
	d := c.Counters[name] - p.Counters[name]
	if d < 0 {
		return 0
	}
	return d
}

// ms renders a seconds value compactly in milliseconds.
func ms(seconds float64) string {
	switch {
	case seconds <= 0:
		return "-"
	case seconds < 0.01:
		return fmt.Sprintf("%.2fms", seconds*1e3)
	default:
		return fmt.Sprintf("%.0fms", seconds*1e3)
	}
}
