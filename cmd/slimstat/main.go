// Command slimstat is a live terminal monitor for a slimd started with
// -debug: it polls the daemon's /debug/vars JSON snapshot and renders a
// one-line-per-interval summary of interactive performance in the paper's
// terms — input-to-paint percentiles against the §3 human-perception
// thresholds, display command and byte rates, and drop percentage.
//
// Usage:
//
//	slimd -debug :6060 &
//	slimstat -addr localhost:6060
//
// Output:
//
//	15:04:05  paint p50 0.8ms p95 3.1ms p99 9.7ms | 412 cmd/s | 38.1 KB/s | drop 0.00% | 2 sessions | breach 1 (3s ago)
//
// Each line covers exactly one polling interval (default 1 s), so the
// percentiles are windowed, not since-boot. Once the flight recorder has
// seen an input-to-paint breach, the line carries the cumulative breach
// count and the age of the latest one — the cue to go look at
// /debug/trace or the breach dumps. The interval arithmetic lives in
// internal/monitor.
//
// Pointed at a slimbroker, the line grows a fleet column — total and
// per-shard session occupancy, hotdesk migrations this interval, and the
// windowed reattach p99:
//
//	... | fleet 7/4sh [1 2 3 1] mig 3 reattach p99 40ms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"slim/internal/monitor"
	"slim/internal/obs"
)

func main() {
	log.SetPrefix("slimstat: ")
	log.SetFlags(0)
	addr := flag.String("addr", "localhost:6060", "slimd debug endpoint (host:port)")
	interval := flag.Duration("interval", time.Second, "polling interval")
	count := flag.Int("n", 0, "stop after this many lines (0 = run until interrupted)")
	flag.Parse()

	url := "http://" + strings.TrimPrefix(*addr, "http://") + "/debug/vars"
	client := &http.Client{Timeout: *interval}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()

	prev, err := scrape(client, url)
	if err != nil {
		log.Fatal(err)
	}
	lines := 0
	for {
		select {
		case <-sig:
			return
		case <-tick.C:
		}
		cur, err := scrape(client, url)
		if err != nil {
			log.Print(err)
			continue
		}
		now := time.Now()
		fmt.Println(monitor.Summarize(prev, cur, *interval, now).Format(now))
		prev = cur
		lines++
		if *count > 0 && lines >= *count {
			return
		}
	}
}

// scrape fetches the domain-keyed snapshots served at /debug/vars.
func scrape(client *http.Client, url string) (map[string]obs.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	var snaps map[string]obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		return nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	return snaps, nil
}
