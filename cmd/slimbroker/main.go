// Command slimbroker is the SLIM session-broker daemon: one UDP attach
// point fronting a fleet of in-process server shards. Consoles boot and
// present smart cards exactly as they do against slimd — the broker
// authenticates the card, places the session on a shard (consistent hash
// or least-loaded), and live-migrates it on hotdesk when the fleet is
// skewed. Consoles never learn any of this; the console protocol is
// unchanged.
//
// Usage:
//
//	slimbroker -addr 127.0.0.1:5499 -shards 8 -card card-1=alice
//	slimbroker -routing leastloaded -migrate-slack 2   # rebalance on hotdesk
//	slimbroker -flow                                   # per-session governors on every shard
//	slimbroker -debug :6060                            # fleet metrics + pprof
//
// With -debug, the headline fleet series are slim_broker_sessions (total),
// slim_broker_shard_sessions{shard="i"} (per-shard occupancy),
// slim_broker_migrations_total, and slim_broker_reattach_seconds (the
// hotdesk card-insert-to-attach latency histogram).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"slim"
)

type cardFlags []string

func (c *cardFlags) String() string { return strings.Join(*c, ",") }

func (c *cardFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want token=user, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

func appFactory(name string, fps float64) (slim.AppFactory, bool, error) {
	switch name {
	case "terminal":
		return slim.WithTerminalApp(), false, nil
	case "desktop":
		return slim.WithDesktopApp(), true, nil
	case "quake":
		return func(user string, w, h int) slim.Application {
			return slim.NewVideoApp(slim.NewQuakeSource(min(w, 640), min(h, 480), 3),
				slim.Rect{W: min(w, 640), H: min(h, 480)}, slim.CSCS5, fps)
		}, true, nil
	default:
		return nil, false, fmt.Errorf("unknown application %q", name)
	}
}

func routingPolicy(name string) (slim.RoutingPolicy, error) {
	switch name {
	case "hash":
		return slim.RouteHash, nil
	case "leastloaded":
		return slim.RouteLeastLoaded, nil
	default:
		return slim.RouteHash, fmt.Errorf("unknown routing policy %q (want hash|leastloaded)", name)
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:5499", "UDP address to listen on")
	shards := flag.Int("shards", 4, "number of in-process server shards")
	routing := flag.String("routing", "hash", "session placement: hash|leastloaded")
	slack := flag.Int("migrate-slack", 0, "with -routing leastloaded, migrate on hotdesk when the home shard holds at least this many more sessions than the emptiest (0: default 2, negative: never migrate automatically)")
	debugAddr := flag.String("debug", "", "serve the debug endpoint (GET /debug/ for the index) on this HTTP address")
	app := flag.String("app", "terminal", "session application: terminal|desktop|quake")
	fps := flag.Float64("fps", 24, "video frame rate for video applications")
	flow := flag.Bool("flow", false, "enable the per-session send governor on every shard (§7)")
	flowBps := flag.Uint64("flow-bps", 0, "with -flow, initial per-session bandwidth demand in bits/s")
	netqualOn := flag.Bool("netqual", false, "estimate per-session path RTT/jitter/loss/goodput passively on every shard (slim_netqual_*, per-shard rollups, /debug/netqual)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
	var cards cardFlags
	flag.Var(&cards, "card", "register a smart card as token=user (repeatable)")
	flag.Parse()

	var lv slog.Level
	if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "slimbroker:", err)
		os.Exit(1)
	}
	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lv})
	} else {
		h = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})
	}
	logger := slog.New(h)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	policy, err := routingPolicy(*routing)
	if err != nil {
		fatal("bad -routing", "err", err)
	}
	factory, video, err := appFactory(*app, *fps)
	if err != nil {
		fatal("bad -app", "err", err)
	}
	if len(cards) == 0 {
		cards = append(cards, "card-demo=demo")
	}
	opts := []slim.ServerOption{slim.WithLogger(logger)}
	if *flow {
		opts = append(opts,
			slim.WithCostModel(slim.SunRay1Costs()),
			slim.WithFlowControl(slim.FlowConfig{InitialBps: *flowBps}),
			slim.WithCalibratedCosts(slim.Calibrator()))
	}
	if *netqualOn {
		// Shards share the process-wide tracker (session IDs are disjoint
		// per shard), so estimator state follows a session across hotdesk
		// migrations and the broker rolls it up per shard.
		slim.SetNetQualEnabled(true)
		logger.Info("passive path estimation on",
			"series", "slim_netqual_*", "watch", "/debug/netqual")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	bro, err := slim.ListenAndServeBroker(ctx, *addr, slim.BrokerConfig{
		Shards:       *shards,
		Routing:      policy,
		MigrateSlack: *slack,
	}, factory, opts...)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	defer bro.Close()

	if *debugAddr != "" {
		dbg, err := slim.ServeDebug(*debugAddr)
		if err != nil {
			fatal("debug endpoint", "addr", *debugAddr, "err", err)
		}
		defer dbg.Close()
		logger.Info("debug endpoint up", "url", "http://"+*debugAddr+"/debug/")
	}
	if video {
		bro.StartTicker(*fps * 2) // tick faster than the frame rate
	}
	// Card enrollment is fleet-wide: every shard shares the broker's
	// authentication manager, so a card works at any shard after migration.
	for _, c := range cards {
		parts := strings.SplitN(c, "=", 2)
		bro.Broker.Register(slim.TokenOf(parts[0]), parts[1])
		logger.Info("registered card", "token", parts[0], "user", parts[1])
	}
	logger.Info("serving SLIM fleet", "addr", bro.Addr(),
		"shards", *shards, "routing", *routing, "app", *app)

	<-ctx.Done()
	logger.Info("shutting down")
}
