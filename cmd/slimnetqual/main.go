// Command slimnetqual regenerates the committed path-telemetry accuracy
// artifact: it sweeps the RTT 1–300 ms × loss 0–10% netsim matrix through
// the passive estimators (internal/obs/netqual) and writes the
// estimated-versus-configured table that TestCommittedBench validates.
//
// Usage:
//
//	slimnetqual -o BENCH_netqual.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"slim/internal/obs/netqual"
)

func main() {
	log.SetPrefix("slimnetqual: ")
	log.SetFlags(0)
	out := flag.String("o", "BENCH_netqual.json", "output artifact path")
	flag.Parse()

	b := netqual.RunSweep()
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	err = netqual.WriteBench(f, b)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	var worstRTT, worstLoss float64
	for _, p := range b.Points {
		if p.RTTErrPct > worstRTT {
			worstRTT = p.RTTErrPct
		}
		if p.LossErrPP > worstLoss {
			worstLoss = p.LossErrPP
		}
	}
	fmt.Printf("wrote %s: %d points, worst RTT err %.2f%% (bar %d%%), worst loss err %.3fpp (bar %.1fpp)\n",
		*out, len(b.Points), worstRTT, netqual.RTTTolerancePct, worstLoss, netqual.LossTolerancePP)
}
