// Command slimload runs trace-driven capacity sweeps: how many mixed
// interactive users fit on one SLIM server before the latency SLO burns
// (see internal/capacity). Each scenario ramps the user count, simulating
// profiled sessions over shared CPUs and a shared downstream link, and
// evaluates every yardstick event against the SLO; the ramp stops at the
// burn knee.
//
// Usage:
//
//	slimload                         # lan + wan scenarios, table to stdout
//	slimload -o BENCH_capacity.json  # also write the committed artifact
//	slimload -scenario wan -max-users 32 -minutes 5
//	slimload -target 100ms -budget 0.005   # sweep a tighter objective
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"slim/internal/capacity"
)

func main() {
	log.SetPrefix("slimload: ")
	log.SetFlags(0)
	scenario := flag.String("scenario", "all", "which ramp to run: lan|wan|all")
	out := flag.String("o", "", "write BENCH_capacity.json here (empty: table only)")
	maxUsers := flag.Int("max-users", 0, "ramp ceiling (0: scenario default)")
	start := flag.Int("start", 0, "first user count (0: scenario default)")
	step := flag.Int("step", 0, "ramp step (0: scenario default)")
	minutes := flag.Float64("minutes", 0, "simulated session length per point (0: scenario default)")
	target := flag.Duration("target", 0, "SLO latency objective (0: the 150ms default)")
	budget := flag.Float64("budget", 0, "SLO breach budget fraction (0: the 1% default)")
	seed := flag.Uint64("seed", 0, "corpus seed (0: scenario default)")
	flag.Parse()

	var scs []capacity.Scenario
	switch *scenario {
	case "lan":
		scs = []capacity.Scenario{capacity.LAN()}
	case "wan":
		scs = []capacity.Scenario{capacity.WAN()}
	case "all":
		scs = []capacity.Scenario{capacity.LAN(), capacity.WAN()}
	default:
		log.Fatalf("unknown scenario %q (want lan|wan|all)", *scenario)
	}

	bench := capacity.Bench{Schema: capacity.BenchSchema}
	for i, sc := range scs {
		if *maxUsers > 0 {
			sc.MaxUsers = *maxUsers
		}
		if *start > 0 {
			sc.Start = *start
		}
		if *step > 0 {
			sc.Step = *step
		}
		if *minutes > 0 {
			sc.SessionLen = time.Duration(*minutes * float64(time.Minute))
		}
		sc.SLO.Target = *target
		sc.SLO.Budget = *budget
		if *seed != 0 {
			sc.Seed = *seed
		}
		if i > 0 {
			fmt.Println()
		}
		curve := capacity.RunScenario(sc, nil)
		if err := capacity.FormatCurve(os.Stdout, curve); err != nil {
			log.Fatal(err)
		}
		bench.Scenarios = append(bench.Scenarios, curve)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		err = capacity.WriteBench(f, bench)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d scenarios)\n", *out, len(bench.Scenarios))
	}
}
