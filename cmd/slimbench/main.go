// Command slimbench regenerates every table and figure in the paper's
// evaluation (§4–§7) and prints them in the paper's terms. The default
// corpus is sized to finish in seconds; use -users and -minutes to run at
// the paper's user-study scale.
//
// Usage:
//
//	slimbench                      # everything, quick corpus
//	slimbench -run fig9 -users 20  # one experiment, bigger corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"slim/internal/experiments"
	"slim/internal/workload"
)

func main() {
	log.SetPrefix("slimbench: ")
	log.SetFlags(0)
	users := flag.Int("users", 10, "simulated study participants per application (paper: 50)")
	minutes := flag.Int("minutes", 10, "session minutes per user (paper: >=10)")
	seed := flag.Uint64("seed", 1999, "corpus seed")
	run := flag.String("run", "all", "comma list: table4,table5,fig2,fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,fig12,multimedia,overhead,vnc,lowbw,qos,wm")
	runFor := flag.Duration("simtime", 60*time.Second, "simulated seconds per sharing data point")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	workloads := flag.String("workload", "", "codec gen-2 comparison drives (scroll|reexpose|mixed|all, comma list); runs only this and exits")
	codec2Out := flag.String("codec2out", "", "with -workload: also write the comparison as JSON (the BENCH_codec2.json artifact)")
	flag.Parse()

	if *workloads != "" {
		runCodec2(*workloads, *codec2Out)
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatalf("memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("memprofile: %v", err)
			}
		}()
	}

	c := experiments.NewCorpus(experiments.Config{
		Users:    *users,
		Duration: time.Duration(*minutes) * time.Minute,
		Seed:     *seed,
	})
	want := map[string]bool{}
	for _, k := range strings.Split(*run, ",") {
		want[strings.TrimSpace(k)] = true
	}
	all := want["all"]
	sel := func(k string) bool { return all || want[k] }

	if sel("table4") {
		r, err := experiments.Table4(300 * time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderTable4(r))
	}
	if sel("table5") {
		fmt.Println(experiments.RenderTable5(experiments.Table5Measured()))
	}
	if sel("fig2") {
		series := experiments.Figure2(c)
		fmt.Println(experiments.RenderCDFFigure(series,
			"Figure 2: input event frequency (events/sec)",
			[]float64{1, 5, 10, 20, 28}, func(x float64) string { return fmt.Sprintf("%.0fHz", x) }))
		fmt.Println(experiments.PlotCDFFigure(series, "Figure 2 (plot): CDF of input event frequency", true,
			func(x float64) string { return fmt.Sprintf("%.2fHz", x) }))
	}
	if sel("fig3") {
		series := experiments.Figure3(c)
		fmt.Println(experiments.RenderCDFFigure(series,
			"Figure 3: pixels changed per input event",
			[]float64{1e3, 1e4, 5e4, 2e5}, func(x float64) string { return fmt.Sprintf("%.0fKpx", x/1e3) }))
		fmt.Println(experiments.PlotCDFFigure(series, "Figure 3 (plot): CDF of pixels changed per event", true,
			func(x float64) string { return fmt.Sprintf("%.0fpx", x) }))
	}
	if sel("fig4") {
		fmt.Println(experiments.RenderFigure4(experiments.Figure4(c)))
	}
	if sel("fig5") {
		series := experiments.Figure5(c)
		fmt.Println(experiments.RenderCDFFigure(series,
			"Figure 5: SLIM protocol bytes per input event",
			[]float64{1e3, 1e4, 5e4}, func(x float64) string { return fmt.Sprintf("%.0fKB", x/1e3) }))
		fmt.Println(experiments.PlotCDFFigure(series, "Figure 5 (plot): CDF of SLIM bytes per event", true,
			func(x float64) string { return fmt.Sprintf("%.0fB", x) }))
	}
	if sel("fig6") {
		series := experiments.Figure6(c)
		fmt.Println(experiments.RenderFigure6(series))
		fmt.Println(experiments.PlotDelaySeries(series))
	}
	if sel("fig7") {
		fmt.Println(experiments.RenderCDFFigure(experiments.Figure7(c),
			"Figure 7: display update service times on the modelled console",
			[]float64{0.010, 0.050, 0.100}, func(x float64) string { return fmt.Sprintf("%.0fms", x*1e3) }))
	}
	if sel("fig8") {
		fmt.Println(experiments.RenderFigure8(experiments.Figure8(c)))
	}
	if sel("fig9") {
		users := []int{1, 4, 8, 10, 12, 14, 16, 18, 24, 30, 36, 44}
		var results []experiments.SharingResult
		for _, app := range workload.Apps {
			r := experiments.Figure9(c, app, users, *runFor)
			results = append(results, r)
			fmt.Println("Figure 9: " + experiments.RenderSharing(r, "avg added"))
		}
		fmt.Println(experiments.PlotSharing(results, "Figure 9 (plot): added latency vs active users (1 CPU)", "avg added"))
	}
	if sel("fig10") {
		for _, r := range experiments.Figure10(c, []int{1, 2, 4, 8}, []int{4, 8, 12, 16, 20}, *runFor) {
			fmt.Println("Figure 10: " + experiments.RenderSharing(r, "avg added"))
		}
	}
	if sel("fig11") {
		gui := []int{25, 50, 100, 130, 160, 200, 300, 500}
		txt := []int{100, 250, 500, 750, 1000, 1500, 2000}
		for _, app := range []workload.App{workload.Photoshop, workload.Netscape} {
			r := experiments.Figure11(c, app, gui, 5, *runFor/2)
			fmt.Println("Figure 11 (paper-density traffic): " + experiments.RenderSharing(r, "avg RTT"))
		}
		for _, app := range []workload.App{workload.FrameMaker, workload.PIM} {
			r := experiments.Figure11(c, app, txt, 5, *runFor/2)
			fmt.Println("Figure 11 (paper-density traffic): " + experiments.RenderSharing(r, "avg RTT"))
		}
	}
	if sel("fig12") {
		fmt.Println("Figure 12: day-long installation profiles")
		for i, site := range experiments.Figure12Sites() {
			samples := experiments.Figure12(site, *seed+uint64(i))
			fmt.Print(experiments.RenderFigure12(site, samples))
		}
		fmt.Println()
	}
	if sel("multimedia") {
		fmt.Println(experiments.RenderMultimedia(experiments.Multimedia()))
	}
	if sel("vnc") {
		var rows []experiments.VNCComparison
		for _, app := range workload.Apps {
			for _, hz := range []float64{2, 10} {
				r, err := experiments.CompareVNC(app, hz, *seed, time.Duration(*minutes)*time.Minute)
				if err != nil {
					log.Fatal(err)
				}
				rows = append(rows, r)
			}
		}
		fmt.Println(experiments.RenderVNCComparison(rows))
	}
	if sel("lowbw") {
		var rows []experiments.LowBWResult
		for _, app := range workload.Apps {
			for _, bps := range []float64{128e3, 56e3} {
				r, err := experiments.LowBandwidth(app, bps, *seed, time.Duration(*minutes)*time.Minute)
				if err != nil {
					log.Fatal(err)
				}
				rows = append(rows, r)
			}
		}
		fmt.Println(experiments.RenderLowBandwidth(rows))
	}
	if sel("qos") {
		r, err := experiments.MixedLoad()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderMixedLoad(r))
		rows := experiments.QoSAblation(c, workload.Netscape, []int{8, 12, 16, 24}, *runFor)
		fmt.Println(experiments.RenderQoS(rows))
	}
	if sel("wm") {
		r, err := experiments.WMTraffic(*minutes, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderWMTraffic(r))
	}
	if sel("overhead") {
		frac := experiments.EncoderOverhead(c)
		fmt.Printf("Section 5.5: SLIM protocol generation is %.1f%% of server display-path time (paper: 1.7%% of X-server execution)\n\n", 100*frac)
	}
}

// runCodec2 runs the gen-2 codec comparison drives and prints the
// Figure 8-shaped bytes-on-wire table. The committed BENCH_codec2.json is
// regenerated with `make codec2`; the drives are seeded with the pinned
// artifact seed so the TestCommittedBench validation stays exact.
func runCodec2(names, out string) {
	sel := strings.Split(names, ",")
	if names == "all" {
		sel = workload.DriveNames
	}
	b := &workload.CodecBench{Schema: workload.CodecBenchSchema, Seed: workload.DefaultCodecSeed}
	for _, n := range sel {
		row, err := workload.RunCodecRow(strings.TrimSpace(n), workload.DefaultCodecSeed)
		if err != nil {
			log.Fatal(err)
		}
		b.Rows = append(b.Rows, row)
	}
	fmt.Print(workload.RenderCodecBench(b))
	if out == "" {
		return
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := workload.WriteCodecBench(f, b); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
