// Command benchjson converts `go test -bench` text output into JSON so
// benchmark numbers can be committed, diffed, and plotted. It reads bench
// output on stdin and writes a JSON array on stdout:
//
//	go test -run xxx -bench Hotpath -benchmem ./internal/fb/ | benchjson > BENCH_hotpath.json
//
// Non-benchmark lines (ok/PASS/goos/pkg headers) pass through silently.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, in the units Go reports.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: fields[0]}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// The rest is value/unit pairs: "251086 ns/op", "1044.32 MB/s", ...
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, true
}

func main() {
	log.SetPrefix("benchjson: ")
	log.SetFlags(0)
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines on stdin")
	}
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}
