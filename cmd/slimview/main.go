// Command slimview is a headless SLIM console: it attaches to a slimd
// server over UDP, presents a smart card, optionally types text into the
// session, and writes the resulting frame buffer as a PNG screenshot —
// a desktop unit for machines without desks.
//
// Usage:
//
//	slimview -server 127.0.0.1:5499 -card card-demo -type "hello" -o screen.png
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"slim"
)

func main() {
	log.SetPrefix("slimview: ")
	log.SetFlags(log.Ltime)
	server := flag.String("server", "127.0.0.1:5499", "slimd UDP address")
	card := flag.String("card", "card-demo", "smart card token to present")
	width := flag.Int("width", 1024, "display width in pixels")
	height := flag.Int("height", 768, "display height in pixels")
	text := flag.String("type", "", "text to type into the session")
	cps := flag.Float64("cps", 0, "paced typing rate in chars/sec (0 = type instantly)")
	codec2 := flag.Bool("codec2", true, "advertise the gen-2 CACHE_PAINT capability and keep a dirty-tile cache (harmless against gen-1 servers)")
	wait := flag.Duration("wait", 500*time.Millisecond, "settle time before the screenshot")
	out := flag.String("o", "screen.png", "screenshot output path")
	flag.Parse()

	cfg := slim.ConsoleConfig{
		Width: *width, Height: *height,
		// Measure real decode costs into the process-wide calibrator: a
		// console is where §4.3's constants actually come from.
		Calibrator: slim.Calibrator(),
	}
	if *codec2 {
		cfg.TileCacheEntries = slim.DefaultTileCacheEntries
	}
	con, err := slim.DialConsoleContext(context.Background(), *server, cfg, slim.TokenOf(*card))
	if err != nil {
		log.Fatal(err)
	}
	defer con.Close()
	time.Sleep(*wait / 2) // allow attach + repaint

	if *text != "" {
		if err := typeText(con, *text, *cps); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(*wait)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := con.Console.Framebuffer().WritePNG(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	applied, dropped := con.Console.Counters()
	fmt.Printf("session %d: %d display commands applied, %d dropped; screenshot in %s\n",
		con.Console.SessionID(), applied, dropped, *out)
}

// typeText types s into the sink, instantly at cps<=0 or paced at cps
// keystrokes per second — a human rhythm gives server-side passive path
// estimators (slimd -netqual) an interactive workload to measure rather
// than one burst datagram.
func typeText(sink slim.InputSink, s string, cps float64) error {
	if cps <= 0 {
		return sink.TypeString(s)
	}
	gap := time.Duration(float64(time.Second) / cps)
	for i := 0; i < len(s); i++ {
		if err := sink.TypeString(s[i : i+1]); err != nil {
			return err
		}
		time.Sleep(gap)
	}
	return nil
}
