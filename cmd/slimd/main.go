// Command slimd is the SLIM server daemon: it serves sessions to SLIM
// consoles over UDP. Each session runs the built-in glyph terminal, or —
// with -app — a video player (the §7 multimedia configurations). Register
// card tokens with -card token=user (repeatable).
//
// Usage:
//
//	slimd -addr 127.0.0.1:5499 -card card-1=alice -card card-2=bob
//	slimd -app quake -fps 30       # every session plays the game stream
//	slimd -flow                    # §7 grant-paced per-session flow control
//	slimd -debug :6060             # live metrics + pprof on http://:6060
//	slimd -capture run.slimcap     # spool every datagram to a wire capture
//	slimd -slo-target 100ms -slo-budget 0.005   # tighten the latency SLO
//	slimd -hostmon                 # host runtime telemetry + profiling
//	slimd -netqual                 # passive per-session path RTT/loss estimation
//	slimd -incident-dir incidents  # SLO-triggered incident bundles
//	slimd -log-level debug -log-json   # structured logging to stderr
//
// With -debug, the daemon serves the debug endpoint on the given address;
// GET /debug/ for the index of everything mounted there (metrics,
// /debug/vars, /debug/trace, /debug/costmodel, /debug/slo, /debug/hostmon,
// /debug/incident, /debug/pprof/). The headline metric is
// slim_input_to_paint_seconds, the paper's §3 interactive-latency figure,
// live per session.
//
// With -capture, every datagram the transport sends or receives is
// spooled (timestamped, with payload) to a .slimcap file — see PROTOCOL.md
// — for offline per-command analysis with slimtrace capture.
//
// With -hostmon, the daemon samples runtime/metrics (GC pauses, scheduler
// latency, heap, goroutines) into slim_runtime_* series, keeps a rotating
// CPU-profile window, and feeds GC/CPU stall windows to the flight
// recorder so latency breaches caused by the host are attributed HOST
// rather than blamed on a pipeline stage.
//
// With -incident-dir, transitions of the fleet SLO into DEGRADED or
// BREACHING write a rate-limited incident bundle (profiles, dumps,
// capture tail, metric snapshots) under the given directory — summarize
// with slimtrace incident, or trigger one manually with
// POST /debug/incident?trigger=reason.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"slim"
	"slim/internal/obs/flight"
)

type cardFlags []string

func (c *cardFlags) String() string { return strings.Join(*c, ",") }

func (c *cardFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want token=user, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

// appFactory maps the -app flag to a session application constructor and
// reports whether the ticker must run.
func appFactory(name string, fps float64) (slim.AppFactory, bool, error) {
	switch name {
	case "terminal":
		return slim.WithTerminalApp(), false, nil
	case "desktop":
		// The desktop paints itself on the first tick.
		return slim.WithDesktopApp(), true, nil
	case "quake":
		return func(user string, w, h int) slim.Application {
			return slim.NewVideoApp(slim.NewQuakeSource(min(w, 640), min(h, 480), 3),
				slim.Rect{W: min(w, 640), H: min(h, 480)}, slim.CSCS5, fps)
		}, true, nil
	case "mpeg2":
		return func(user string, w, h int) slim.Application {
			return slim.NewVideoApp(slim.NewMPEG2Source(3),
				slim.Rect{W: min(w, 720), H: min(h, 480)}, slim.CSCS6, fps)
		}, true, nil
	case "ntsc":
		return func(user string, w, h int) slim.Application {
			return slim.NewVideoApp(slim.NewNTSCSource(3),
				slim.Rect{W: min(w, 640), H: min(h, 480)}, slim.CSCS8, fps)
		}, true, nil
	default:
		return nil, false, fmt.Errorf("unknown application %q", name)
	}
}

// newLogger builds the daemon's structured logger from -log-level and
// -log-json.
func newLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:5499", "UDP address to listen on")
	debugAddr := flag.String("debug", "", "serve the debug endpoint (GET /debug/ for the index) on this HTTP address")
	state := flag.String("state", "", "session state file: loaded at boot, saved at shutdown")
	app := flag.String("app", "terminal", "session application: terminal|desktop|quake|mpeg2|ntsc")
	fps := flag.Float64("fps", 24, "video frame rate for video applications")
	flow := flag.Bool("flow", false, "enable the per-session send governor: pace to console grants, supersede stale damage, budget retransmits (§7)")
	codec2 := flag.Bool("codec2", false, "arm the gen-2 codec (content-typed tiles + dirty-tile cache); engages per attachment for consoles advertising CACHE_PAINT")
	flowBps := flag.Uint64("flow-bps", 0, "with -flow, initial per-session bandwidth demand in bits/s (0: derive from the cost model)")
	flightThreshold := flag.Duration("flight-threshold", flight.DefaultThreshold,
		"input-to-paint latency that triggers a flight-recorder breach (0 disables)")
	flightDir := flag.String("flight-dir", "", "directory for flight-recorder breach dumps (empty: count breaches, write nothing)")
	capturePath := flag.String("capture", "", "spool a wire capture of every datagram to this .slimcap file")
	sloTarget := flag.Duration("slo-target", slim.SLO().Target(),
		"per-event latency objective the SLO engine evaluates against")
	sloBudget := flag.Float64("slo-budget", slim.SLO().Budget(),
		"allowed breach fraction, e.g. 0.01 for 1% of events")
	netqualOn := flag.Bool("netqual", false, "estimate per-session path RTT/jitter/loss/goodput passively from STATUS/NACK/grant traffic (slim_netqual_*, /debug/netqual)")
	hostmonOn := flag.Bool("hostmon", false, "sample host runtime telemetry (slim_runtime_*), profile continuously, and attribute HOST-caused latency breaches")
	hostmonInterval := flag.Duration("hostmon-interval", 0, "with -hostmon, runtime sampling period (0: the 250ms default)")
	profileWindow := flag.Duration("profile-window", 0, "with -hostmon, length of each rotating CPU-profile window (0: the 5s default)")
	incidentDir := flag.String("incident-dir", "", "write SLO-triggered incident bundles under this directory (implies -hostmon)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON lines instead of text")
	var cards cardFlags
	flag.Var(&cards, "card", "register a smart card as token=user (repeatable)")
	flag.Parse()

	logger, err := newLogger(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slimd:", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	slim.SetFlightThreshold(*flightThreshold)
	slim.SetSLOTarget(*sloTarget)
	slim.SetSLOBudget(*sloBudget)
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			fatal("flight dump dir", "err", err)
		}
		slim.SetFlightDumpDir(*flightDir)
		logger.Info("flight-recorder breach dumps on",
			"threshold", *flightThreshold, "dir", *flightDir)
	}

	if len(cards) == 0 {
		cards = append(cards, "card-demo=demo")
	}
	factory, video, err := appFactory(*app, *fps)
	if err != nil {
		fatal("bad -app", "err", err)
	}
	opts := []slim.ServerOption{slim.WithLogger(logger)}
	if *codec2 {
		opts = append(opts, slim.WithCodec2())
	}
	if *flow {
		opts = append(opts,
			slim.WithCostModel(slim.SunRay1Costs()),
			slim.WithFlowControl(slim.FlowConfig{InitialBps: *flowBps}),
			slim.WithCalibratedCosts(slim.Calibrator()))
	}
	if *capturePath != "" {
		cf, err := slim.StartCapture(*capturePath)
		if err != nil {
			fatal("start capture", "err", err)
		}
		defer func() {
			if err := cf.Close(); err != nil {
				logger.Error("capture close", "err", err)
			}
		}()
		logger.Info("spooling wire capture",
			"path", *capturePath, "decode", "slimtrace capture -i "+*capturePath)
	}
	if *netqualOn {
		slim.SetNetQualEnabled(true)
		logger.Info("passive path estimation on",
			"series", "slim_netqual_*", "watch", "/debug/netqual")
	}
	if *hostmonOn || *incidentDir != "" {
		slim.HostMonitor().SetInterval(*hostmonInterval)
		slim.HostProfiler().SetWindow(*profileWindow)
		stop := slim.StartHostMonitor()
		defer stop()
		logger.Info("host runtime telemetry on",
			"interval", slim.HostMonitor().Interval(),
			"profile_window", slim.HostProfiler().Window())
	}
	if *incidentDir != "" {
		if err := os.MkdirAll(*incidentDir, 0o755); err != nil {
			fatal("incident dir", "err", err)
		}
		eng := slim.StartIncidents(*incidentDir)
		defer eng.Close()
		logger.Info("incident bundles on",
			"dir", *incidentDir, "summarize", "slimtrace incident -dir "+*incidentDir)
	}
	srv, err := slim.ListenAndServeContext(context.Background(), *addr, factory, opts...)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	if *flow {
		logger.Info("flow control on: sessions pace to console bandwidth grants")
	}
	defer srv.Close()
	if *debugAddr != "" {
		dbg, err := slim.ServeDebug(*debugAddr)
		if err != nil {
			fatal("debug endpoint", "addr", *debugAddr, "err", err)
		}
		defer dbg.Close()
		logger.Info("debug endpoint up",
			"url", "http://"+*debugAddr+"/debug/")
		logger.Info("latency SLO",
			"target", *sloTarget, "budget_pct", *sloBudget*100, "watch", "/debug/slo")
	}
	if video {
		srv.StartTicker(*fps * 2) // tick faster than the frame rate
	}
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			loadErr := srv.Server.LoadSessions(f)
			f.Close()
			if loadErr != nil {
				fatal("load state", "path", *state, "err", loadErr)
			}
			logger.Info("restored sessions", "path", *state)
		} else if !os.IsNotExist(err) {
			fatal("open state", "path", *state, "err", err)
		}
	}
	// Card enrollment goes through the Directory surface; Single is the
	// one-shard implementation, so slimd behaves exactly as before.
	dir := slim.NewSingle(srv.Server)
	for _, c := range cards {
		parts := strings.SplitN(c, "=", 2)
		dir.Register(slim.TokenOf(parts[0]), parts[1])
		logger.Info("registered card", "token", parts[0], "user", parts[1])
	}
	logger.Info("serving SLIM sessions", "addr", srv.Addr(), "app", *app)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down", "signal", s.String())
	if *state != "" {
		f, err := os.Create(*state)
		if err != nil {
			fatal("create state", "path", *state, "err", err)
		}
		if err := srv.Server.SaveSessions(f); err != nil {
			fatal("save sessions", "err", err)
		}
		if err := f.Close(); err != nil {
			fatal("close state", "err", err)
		}
		logger.Info("sessions saved; they resume on the next start", "path", *state)
		return
	}
	logger.Info("sessions persist only in this process")
}
