// Command slimd is the SLIM server daemon: it serves sessions to SLIM
// consoles over UDP. Each session runs the built-in glyph terminal, or —
// with -app — a video player (the §7 multimedia configurations). Register
// card tokens with -card token=user (repeatable).
//
// Usage:
//
//	slimd -addr 127.0.0.1:5499 -card card-1=alice -card card-2=bob
//	slimd -app quake -fps 30       # every session plays the game stream
//	slimd -flow                    # §7 grant-paced per-session flow control
//	slimd -debug :6060             # live metrics + pprof on http://:6060
//	slimd -capture run.slimcap     # spool every datagram to a wire capture
//	slimd -slo-target 100ms -slo-budget 0.005   # tighten the latency SLO
//
// With -debug, the daemon serves /metrics (Prometheus text), /debug/vars
// (JSON snapshot, polled by cmd/slimstat), /debug/costmodel (live cost
// calibration), /debug/slo (the burn-rate SLO engine's health states and
// breach-blame histograms), and /debug/pprof/ on the given address. The
// headline metric is slim_input_to_paint_seconds, the paper's §3
// interactive-latency figure, live per session.
//
// With -capture, every datagram the transport sends or receives is
// spooled (timestamped, with payload) to a .slimcap file — see PROTOCOL.md
// — for offline per-command analysis with slimtrace capture.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"slim"
	"slim/internal/obs/flight"
)

type cardFlags []string

func (c *cardFlags) String() string { return strings.Join(*c, ",") }

func (c *cardFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want token=user, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

// appFactory maps the -app flag to a session application constructor and
// reports whether the ticker must run.
func appFactory(name string, fps float64) (slim.AppFactory, bool, error) {
	switch name {
	case "terminal":
		return slim.WithTerminalApp(), false, nil
	case "desktop":
		// The desktop paints itself on the first tick.
		return slim.WithDesktopApp(), true, nil
	case "quake":
		return func(user string, w, h int) slim.Application {
			return slim.NewVideoApp(slim.NewQuakeSource(min(w, 640), min(h, 480), 3),
				slim.Rect{W: min(w, 640), H: min(h, 480)}, slim.CSCS5, fps)
		}, true, nil
	case "mpeg2":
		return func(user string, w, h int) slim.Application {
			return slim.NewVideoApp(slim.NewMPEG2Source(3),
				slim.Rect{W: min(w, 720), H: min(h, 480)}, slim.CSCS6, fps)
		}, true, nil
	case "ntsc":
		return func(user string, w, h int) slim.Application {
			return slim.NewVideoApp(slim.NewNTSCSource(3),
				slim.Rect{W: min(w, 640), H: min(h, 480)}, slim.CSCS8, fps)
		}, true, nil
	default:
		return nil, false, fmt.Errorf("unknown application %q", name)
	}
}

func main() {
	log.SetPrefix("slimd: ")
	log.SetFlags(log.Ltime)
	addr := flag.String("addr", "127.0.0.1:5499", "UDP address to listen on")
	debugAddr := flag.String("debug", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address")
	state := flag.String("state", "", "session state file: loaded at boot, saved at shutdown")
	app := flag.String("app", "terminal", "session application: terminal|desktop|quake|mpeg2|ntsc")
	fps := flag.Float64("fps", 24, "video frame rate for video applications")
	flow := flag.Bool("flow", false, "enable the per-session send governor: pace to console grants, supersede stale damage, budget retransmits (§7)")
	flowBps := flag.Uint64("flow-bps", 0, "with -flow, initial per-session bandwidth demand in bits/s (0: derive from the cost model)")
	flightThreshold := flag.Duration("flight-threshold", flight.DefaultThreshold,
		"input-to-paint latency that triggers a flight-recorder breach (0 disables)")
	flightDir := flag.String("flight-dir", "", "directory for flight-recorder breach dumps (empty: count breaches, write nothing)")
	capturePath := flag.String("capture", "", "spool a wire capture of every datagram to this .slimcap file")
	sloTarget := flag.Duration("slo-target", slim.SLO().Target(),
		"per-event latency objective the SLO engine evaluates against")
	sloBudget := flag.Float64("slo-budget", slim.SLO().Budget(),
		"allowed breach fraction, e.g. 0.01 for 1% of events")
	var cards cardFlags
	flag.Var(&cards, "card", "register a smart card as token=user (repeatable)")
	flag.Parse()

	slim.SetFlightThreshold(*flightThreshold)
	slim.SetSLOTarget(*sloTarget)
	slim.SetSLOBudget(*sloBudget)
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			log.Fatal(err)
		}
		slim.SetFlightDumpDir(*flightDir)
		log.Printf("flight-recorder breach dumps (threshold %v) in %s", *flightThreshold, *flightDir)
	}

	if len(cards) == 0 {
		cards = append(cards, "card-demo=demo")
	}
	factory, video, err := appFactory(*app, *fps)
	if err != nil {
		log.Fatal(err)
	}
	var opts []slim.ServerOption
	if *flow {
		opts = append(opts,
			slim.WithCostModel(slim.SunRay1Costs()),
			slim.WithFlowControl(slim.FlowConfig{InitialBps: *flowBps}),
			slim.WithCalibratedCosts(slim.Calibrator()))
	}
	if *capturePath != "" {
		cf, err := slim.StartCapture(*capturePath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := cf.Close(); err != nil {
				log.Printf("capture: %v", err)
			}
		}()
		log.Printf("spooling wire capture to %s (decode with: slimtrace capture -i %s)",
			*capturePath, *capturePath)
	}
	srv, err := slim.ListenAndServe(*addr, factory, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *flow {
		log.Printf("flow control on: sessions pace to console bandwidth grants")
	}
	defer srv.Close()
	if *debugAddr != "" {
		dbg, err := slim.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug endpoint on http://%s (/metrics, /debug/vars, /debug/trace, /debug/slo, /debug/pprof)", *debugAddr)
		log.Printf("latency SLO: %v at %.2f%% budget (watch /debug/slo)",
			*sloTarget, *sloBudget*100)
	}
	if video {
		srv.StartTicker(*fps * 2) // tick faster than the frame rate
	}
	if *state != "" {
		if f, err := os.Open(*state); err == nil {
			loadErr := srv.Server.LoadSessions(f)
			f.Close()
			if loadErr != nil {
				log.Fatalf("load %s: %v", *state, loadErr)
			}
			log.Printf("restored sessions from %s", *state)
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}
	for _, c := range cards {
		parts := strings.SplitN(c, "=", 2)
		srv.Server.Auth.Register(parts[0], parts[1])
		log.Printf("registered card %q for user %q", parts[0], parts[1])
	}
	log.Printf("serving SLIM sessions on %s", srv.Addr())

	log.Printf("sessions run the %q application", *app)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	if *state != "" {
		f, err := os.Create(*state)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.Server.SaveSessions(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("sessions saved to %s; they resume on the next start", *state)
		return
	}
	log.Print("shutting down; sessions persist only in this process")
}
