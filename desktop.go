package slim

import "slim/internal/wm"

// DesktopApp is a complete windowed desktop environment as a session
// application: terminal windows composed server-side, driven by keyboard
// and mouse over the wire. See internal/wm for the key bindings.
type DesktopApp = wm.DesktopApp

// NewDesktopApp returns a desktop environment for a w×h session.
func NewDesktopApp(w, h int) *DesktopApp { return wm.NewDesktopApp(w, h) }

// WithDesktopApp is an application factory giving every session a
// windowed desktop.
func WithDesktopApp() AppFactory {
	return func(user string, w, h int) Application { return wm.NewDesktopApp(w, h) }
}

// Desktop key codes (above ASCII; plain characters type into the focused
// terminal window).
const (
	KeyNewWindow   = wm.KeyNewWindow
	KeyCycleFocus  = wm.KeyCycleFocus
	KeyCloseWindow = wm.KeyCloseWindow
	KeyNudgeLeft   = wm.KeyNudgeLeft
	KeyNudgeRight  = wm.KeyNudgeRight
	KeyNudgeUp     = wm.KeyNudgeUp
	KeyNudgeDown   = wm.KeyNudgeDown
)
