package slim

import (
	"container/heap"
	"io"
	"net"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"slim/internal/netsim"
	"slim/internal/obs"
	"slim/internal/obs/capture"
	"slim/internal/obs/flight"
	"slim/internal/protocol"
)

// The overload end-to-end: eight sessions — six interactive terminals and
// two video players — share one simulated downstream link that shrinks
// from 10 Mbps to 1 Mbps mid-run. Without flow control the video traffic
// fills the link buffer and every keystroke echo queues behind it; with
// the grant-driven governor each session paces to its console's grant,
// stale video frames are superseded instead of transmitted, and
// interactive latency stays low. The test asserts the §7 claim
// quantitatively: p95 input-to-paint is lower with the governor than
// without, degradation shows up as superseded (stale) frames rather than
// a collapsed queue, and the supersession/utilization accounting is
// visible on the debug endpoint and in the flight ring.

// simEvent is one scheduled occurrence in the virtual-time run.
type simEvent struct {
	at   time.Duration
	ord  int // tie-break: FIFO among same-time events
	kind int
	desk string
	wire []byte
	key  uint16
}

const (
	evDeliver = iota // link delivered a server→console datagram
	evInput          // a user pressed a key at a desk
	evTick           // the server's frame clock (drives video apps)
	evPump           // governed: scheduled flow release
	evShrink         // the link narrows
)

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].ord < h[j].ord
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }

// overloadHarness is the virtual-time world: a Transport modelling one
// shared store-and-forward link, the consoles behind it, and the event
// queue gluing them to the server.
type overloadHarness struct {
	t        *testing.T
	srv      *Server
	consoles map[string]*Console

	link      netsim.Link
	busyUntil time.Duration
	queued    []struct {
		depart time.Duration
		size   int
	}
	queuedBytes int
	linkDrops   int

	now    time.Duration
	events eventHeap
	ord    int

	// cap, when enabled, records every datagram crossing the harness —
	// the same tap point the real transports use.
	cap *capture.Ring

	// paintAt records when each display sequence number reached its
	// console; inputs resolve against it after the run.
	paintAt map[string]map[uint32]time.Duration
}

func (h *overloadHarness) Addr() net.Addr { return fabricAddr{} }

func (h *overloadHarness) Close() error { return nil }

func (h *overloadHarness) schedule(ev simEvent) {
	ev.ord = h.ord
	h.ord++
	heap.Push(&h.events, ev)
}

// Send implements the Transport: display traffic (plain or batch frames)
// serializes through the shared link with tail drop; control traffic
// bypasses it (the paper's control plane is negligible next to pixels).
func (h *overloadHarness) Send(console string, wire []byte) error {
	if h.cap.Enabled() {
		h.cap.Tap(capture.DirDown, console, -1, wire, h.now)
	}
	w := append([]byte(nil), wire...)
	display := protocol.IsBatch(w) || isDisplayDatagram(w)
	if !display {
		h.schedule(simEvent{at: h.now + h.link.Prop, kind: evDeliver, desk: console, wire: w})
		return nil
	}
	for len(h.queued) > 0 && h.queued[0].depart <= h.now {
		h.queuedBytes -= h.queued[0].size
		h.queued = h.queued[1:]
	}
	if h.link.BufBytes > 0 && h.queuedBytes+len(w) > h.link.BufBytes {
		h.linkDrops++
		return nil // tail drop: the datagram vanishes, Nack recovery applies
	}
	start := h.now
	if h.busyUntil > start {
		start = h.busyUntil
	}
	depart := start + h.link.SerializeTime(len(w))
	h.busyUntil = depart
	h.queued = append(h.queued, struct {
		depart time.Duration
		size   int
	}{depart, len(w)})
	h.queuedBytes += len(w)
	h.schedule(simEvent{at: depart + h.link.Prop, kind: evDeliver, desk: console, wire: w})
	return nil
}

// markPainted records arrival times for every display seq in a frame.
func (h *overloadHarness) markPainted(desk string, wire []byte) {
	m := h.paintAt[desk]
	if protocol.IsBatch(wire) {
		seqs, msgs, err := protocol.DecodeBatch(wire)
		if err != nil {
			h.t.Fatal(err)
		}
		for i, msg := range msgs {
			if msg.Type().IsDisplay() {
				m[seqs[i]] = h.now
			}
		}
		return
	}
	seq, msg, _, err := protocol.Decode(wire)
	if err != nil {
		h.t.Fatal(err)
	}
	if msg.Type().IsDisplay() {
		m[seq] = h.now
	}
}

// inputRecord is one keystroke and the display seqs its echo produced.
type inputRecord struct {
	at   time.Duration
	desk string
	from uint32 // first seq of the echo (exclusive lower bound is from-1)
	to   uint32 // last seq
}

type overloadResult struct {
	p95       time.Duration
	latencies []time.Duration
	stale     int // inputs whose original echo never painted (shed or lost)
	linkDrops int
}

// runOverload drives the scenario and reports interactive latency. A
// non-nil ring captures every datagram the run puts on the simulated wire.
func runOverload(t *testing.T, governed bool, reg *obs.Registry, rec *flight.Recorder, ring *capture.Ring) overloadResult {
	t.Helper()
	const (
		nTerm     = 6
		nVideo    = 2
		simEnd    = 8 * time.Second
		inputFrom = 1500 * time.Millisecond
		inputStep = 100 * time.Millisecond
	)
	newApp := func(user string, w, hh int) Application {
		if strings.HasPrefix(user, "vid") {
			return NewVideoApp(NewMPEG2Source(7), Rect{X: 0, Y: 0, W: 128, H: 96}, CSCS8, 30)
		}
		return NewTerminal(w, hh)
	}
	h := &overloadHarness{
		t:        t,
		consoles: make(map[string]*Console),
		paintAt:  make(map[string]map[uint32]time.Duration),
		link:     netsim.Link{Bps: netsim.Rate10Mbps, Prop: 200 * time.Microsecond, BufBytes: 128 << 10},
		cap:      ring,
	}
	opts := []ServerOption{WithMetricsRegistry(reg), WithFlightRecorder(rec)}
	if governed {
		opts = append(opts,
			WithCostModel(SunRay1Costs()),
			WithFlowControl(FlowConfig{
				InitialBps:              400_000,
				SupersedeThresholdBytes: 4096,
				Batch:                   true,
			}))
	}
	h.srv = NewServer(h, newApp, opts...)

	var desks []string
	for i := 0; i < nTerm+nVideo; i++ {
		user := "term"
		if i >= nTerm {
			user = "vid"
		}
		user += string(rune('0' + i))
		desk := "desk" + string(rune('0'+i))
		h.srv.Auth.Register("card-"+user, user)
		con, err := NewConsole(ConsoleConfig{
			Width: 160, Height: 120,
			TotalBps: 100_000, // the console's §7 downstream allocator
			Obs:      reg, Flight: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.consoles[desk] = con
		h.paintAt[desk] = make(map[uint32]time.Duration)
		desks = append(desks, desk)
		hello := con.Hello()
		hello.CardToken = "card-" + user
		if err := h.srv.Handle(desk, hello, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Schedule the run: frame ticks, the mid-run link shrink, and a
	// staggered keystroke trace on every terminal desk.
	for at := time.Duration(0); at < simEnd; at += 33 * time.Millisecond {
		h.schedule(simEvent{at: at, kind: evTick})
	}
	h.schedule(simEvent{at: time.Second, kind: evShrink})
	for i := 0; i < nTerm; i++ {
		stagger := time.Duration(i) * (inputStep / nTerm)
		for at := inputFrom + stagger; at < simEnd; at += inputStep {
			h.schedule(simEvent{at: at, kind: evInput, desk: desks[i], key: uint16('a' + i)})
		}
	}

	var inputs []inputRecord
	pumpAt := time.Duration(-1)
	pump := func() {
		if !governed {
			return
		}
		next, pending, err := h.srv.PumpFlows(h.now)
		if err != nil {
			t.Fatal(err)
		}
		if pending && (pumpAt < h.now || next < pumpAt) {
			if next <= h.now {
				next = h.now + time.Millisecond
			}
			pumpAt = next
			h.schedule(simEvent{at: next, kind: evPump})
		}
	}

	for h.events.Len() > 0 {
		ev := heap.Pop(&h.events).(simEvent)
		h.now = ev.at
		switch ev.kind {
		case evShrink:
			h.link.Bps = netsim.Rate1Mbps
		case evTick:
			if err := h.srv.Tick(h.now); err != nil {
				t.Fatal(err)
			}
		case evInput:
			sess := h.srv.SessionOf(ev.desk)
			if sess == nil {
				t.Fatalf("no session on %s", ev.desk)
			}
			pre := sess.Encoder.LastSeq()
			if err := h.srv.Handle(ev.desk, &protocol.KeyEvent{Code: ev.key, Down: true}, h.now); err != nil {
				t.Fatal(err)
			}
			if post := sess.Encoder.LastSeq(); post > pre {
				inputs = append(inputs, inputRecord{at: h.now, desk: ev.desk, from: pre + 1, to: post})
			}
		case evDeliver:
			h.markPainted(ev.desk, ev.wire)
			replies, err := h.consoles[ev.desk].HandleDatagram(ev.wire, h.now)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range replies {
				if h.cap.Enabled() {
					h.cap.Tap(capture.DirUp, ev.desk, -1, r, h.now)
				}
				if err := h.srv.HandleDatagram(ev.desk, r, h.now); err != nil {
					t.Fatal(err)
				}
			}
		case evPump:
			// handled by the post-event pump below
		}
		pump()
	}

	res := overloadResult{linkDrops: h.linkDrops}
	for _, in := range inputs {
		painted := time.Duration(-1)
		complete := true
		for seq := in.from; seq <= in.to; seq++ {
			at, ok := h.paintAt[in.desk][seq]
			if !ok {
				complete = false
				break
			}
			if at > painted {
				painted = at
			}
		}
		if !complete {
			res.stale++ // echo shed as stale or lost on the wire
			continue
		}
		res.latencies = append(res.latencies, painted-in.at)
	}
	if len(res.latencies) == 0 {
		t.Fatal("no input completed its paint")
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	res.p95 = res.latencies[len(res.latencies)*95/100]
	return res
}

func TestOverloadGovernorDegradesGracefully(t *testing.T) {
	regOff := obs.NewRegistry(obs.DomainWall)
	recOff := flight.New(obs.DomainWall).Instrument(regOff)
	off := runOverload(t, false, regOff, recOff, nil)

	regOn := obs.NewRegistry(obs.DomainWall)
	recOn := flight.New(obs.DomainWall).Instrument(regOn)
	on := runOverload(t, true, regOn, recOn, nil)

	t.Logf("governor off: p95=%v inputs=%d stale=%d linkDrops=%d",
		off.p95, len(off.latencies)+off.stale, off.stale, off.linkDrops)
	t.Logf("governor on:  p95=%v inputs=%d stale=%d linkDrops=%d",
		on.p95, len(on.latencies)+on.stale, on.stale, on.linkDrops)

	// The acceptance claim: pacing + supersession keeps interaction fast
	// on the constricted link.
	if on.p95 >= off.p95 {
		t.Errorf("governed p95 %v not lower than ungoverned %v", on.p95, off.p95)
	}
	// Degradation is graceful: stale state is shed at the server instead
	// of collapsing the link queue.
	snap := regOn.Snapshot()
	if snap.Counters["slim_flow_superseded_total"] == 0 {
		t.Error("governor shed no stale frames under overload")
	}
	if on.linkDrops > off.linkDrops {
		t.Errorf("governed run dropped more on the link (%d) than ungoverned (%d)",
			on.linkDrops, off.linkDrops)
	}

	// The accounting is visible where an operator would look: the /debug
	// metrics exposition and the session's flight ring.
	mux := obs.DebugMux(regOn, obs.Sim)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, req)
	body, _ := io.ReadAll(rw.Result().Body)
	for _, want := range []string{"slim_flow_superseded_total", "slim_flow_grant_utilization"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var sawTxq, sawSup bool
	for _, id := range recOn.Sessions() {
		for _, ev := range recOn.Events(id, time.Hour) {
			switch ev.Kind {
			case flight.EvTxQueue:
				sawTxq = true
			case flight.EvSupersede:
				sawSup = true
			}
		}
	}
	if !sawTxq || !sawSup {
		t.Errorf("flight rings missing governor events: TXQ=%v SUPERSEDE=%v", sawTxq, sawSup)
	}
}
