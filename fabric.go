package slim

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"slim/internal/obs"
	"slim/internal/obs/capture"
	"slim/internal/protocol"
)

// fabricMetrics is the in-process transport's live instrument set.
type fabricMetrics struct {
	delivered *obs.Counter
	dropped   *obs.Counter
	queue     *obs.Gauge
	// deliverSeconds is the wall time one datagram spends in delivery:
	// console decode plus any replies fed back into the server.
	deliverSeconds *obs.Histogram
}

func newFabricMetrics(r *obs.Registry) *fabricMetrics {
	return &fabricMetrics{
		delivered:      r.Counter("slim_fabric_delivered_total"),
		dropped:        r.Counter("slim_fabric_dropped_total"),
		queue:          r.Gauge("slim_fabric_queue_depth"),
		deliverSeconds: r.Histogram("slim_fabric_deliver_seconds"),
	}
}

// Fabric is an in-process interconnection fabric: consoles and a server
// wired directly together, with the same message flow as the UDP transport
// but no sockets. It is the easiest way to embed a SLIM system in tests,
// examples, and simulations.
//
// Fabric implements Transport for the server side; console replies (Nacks,
// Pongs, bandwidth grants) are routed back automatically.
type Fabric struct {
	mu       sync.Mutex
	consoles map[string]*Console
	servers  map[string]SessionHandler
	closed   bool
	// clock is the virtual time passed to console handlers (SetClock);
	// advance it if your test models decode delays.
	clock time.Duration

	// dropEvery, when positive, drops every Nth display datagram on the
	// server→console path — loss injection for exercising the protocol's
	// replay recovery. Control traffic is never dropped.
	dropEvery int
	sent      int
	dropped   int

	// Delivery is flattened into a FIFO: a datagram sent while another is
	// being delivered queues behind it instead of recursing. Without this,
	// loss recovery triggered from inside a delivery would nest — a
	// recovery datagram's own loss spawning recovery — which a real
	// network (where transmission is asynchronous) never does.
	queue    []queuedDatagram
	draining bool

	metrics *fabricMetrics
	// capture is the wire tap (capture.Default unless redirected by
	// SetCapture): both directions of every desk's traffic are recorded
	// at virtual time when the ring is enabled.
	capture *capture.Ring
}

type queuedDatagram struct {
	console string
	wire    []byte
}

// NewFabric returns an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		consoles: make(map[string]*Console),
		servers:  make(map[string]SessionHandler),
		metrics:  newFabricMetrics(obs.Default),
		capture:  capture.Default,
	}
}

// SetCapture redirects the fabric's wire tap to r (nil disables tapping
// entirely). Hermetic tests give each fabric its own ring the same way
// they give each server its own registry.
func (f *Fabric) SetCapture(r *capture.Ring) {
	f.mu.Lock()
	f.capture = r
	f.mu.Unlock()
}

// Attach wires a console to a server side — a *Server, or a *Broker
// fronting a shard fleet — under the given desk ID.
func (f *Fabric) Attach(id string, con *Console, srv SessionHandler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.consoles[id] = con
	f.servers[id] = srv
}

// fabricAddr is the in-process transport's synthetic address.
type fabricAddr struct{}

func (fabricAddr) Network() string { return "fabric" }
func (fabricAddr) String() string  { return "fabric" }

// Addr implements Transport: the fabric has no network endpoint.
func (f *Fabric) Addr() net.Addr { return fabricAddr{} }

// Close implements Transport: detach every desk. Idempotent; a closed
// fabric rejects further sends.
func (f *Fabric) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	f.consoles = make(map[string]*Console)
	f.servers = make(map[string]SessionHandler)
	return nil
}

// SetClock sets the virtual time passed to console and server handlers.
func (f *Fabric) SetClock(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clock = d
}

// Now reports the fabric's virtual clock.
func (f *Fabric) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clock
}

// Pump services every attached server's flow governors at the fabric's
// current virtual clock — paced traffic queued by bandwidth grants is
// released, deferred retransmits regenerate. Call it after SetClock when
// a test advances time. No-op for servers without flow control.
func (f *Fabric) Pump() error {
	f.mu.Lock()
	clock := f.clock
	seen := make(map[SessionHandler]bool, len(f.servers))
	srvs := make([]SessionHandler, 0, len(f.servers))
	for _, srv := range f.servers {
		if srv != nil && !seen[srv] {
			seen[srv] = true
			srvs = append(srvs, srv)
		}
	}
	f.mu.Unlock()
	var firstErr error
	for _, srv := range srvs {
		if _, _, err := srv.PumpFlows(clock); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SetLoss makes the fabric drop every Nth display datagram on the
// server→console path (0 disables). The SLIM protocol is designed to
// survive exactly this (§2.2); tests use it to exercise Nack recovery.
func (f *Fabric) SetLoss(dropEvery int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropEvery = dropEvery
	f.sent = 0
}

// LossStats reports display datagrams delivered and dropped.
func (f *Fabric) LossStats() (delivered, dropped int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sent - f.dropped, f.dropped
}

// isDisplayDatagram peeks at a plain-framed datagram's type byte.
func isDisplayDatagram(wire []byte) bool {
	return len(wire) >= protocol.HeaderSize &&
		protocol.MsgType(wire[3]).IsDisplay() && !protocol.IsBatch(wire)
}

// Send implements Transport: deliver a server datagram to the console and
// feed any console replies back to the server. Deliveries are serialized
// through a FIFO; a Send issued during another delivery (loss recovery,
// bandwidth grants) queues rather than nesting.
func (f *Fabric) Send(consoleID string, wire []byte) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("slim: fabric is closed")
	}
	_, ok := f.consoles[consoleID]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("slim: no console %q on fabric", consoleID)
	}
	// Tap before loss injection: the capture point is the server's NIC,
	// and injected loss happens downstream on the modelled wire.
	if f.capture.Enabled() {
		f.capture.Tap(capture.DirDown, consoleID, -1, wire, f.clock)
	}
	if f.dropEvery > 0 && isDisplayDatagram(wire) {
		f.sent++
		if f.sent%f.dropEvery == 0 {
			f.dropped++
			f.metrics.dropped.Inc()
			srv := f.servers[consoleID]
			f.mu.Unlock()
			// Flight-record the loss outside f.mu: SessionOf takes the
			// server lock, and console replies already order s.mu → f.mu.
			if srv != nil {
				if sess := srv.SessionOf(consoleID); sess != nil && sess.FlightLog().Armed() {
					sess.FlightLog().Drop(binary.BigEndian.Uint32(wire[4:8]),
						protocol.MsgType(wire[3]), int64(len(wire)))
				}
			}
			return nil // the datagram vanished on the wire
		}
	}
	if f.draining {
		// This Send returns before the active drain delivers the datagram,
		// and the server recycles wire buffers as soon as Send returns
		// (the Transport contract) — so a queued-behind-a-drain wire must
		// be copied to survive until delivery.
		wire = append([]byte(nil), wire...)
	}
	f.queue = append(f.queue, queuedDatagram{console: consoleID, wire: wire})
	f.metrics.queue.Set(int64(len(f.queue)))
	if f.draining {
		f.mu.Unlock()
		return nil // the active drain will deliver it
	}
	f.draining = true
	f.mu.Unlock()
	return f.drain()
}

// drain delivers queued datagrams in order until the queue empties.
func (f *Fabric) drain() error {
	var firstErr error
	for {
		f.mu.Lock()
		if len(f.queue) == 0 {
			f.draining = false
			f.mu.Unlock()
			return firstErr
		}
		item := f.queue[0]
		f.queue = f.queue[1:]
		f.metrics.queue.Set(int64(len(f.queue)))
		con := f.consoles[item.console]
		srv := f.servers[item.console]
		clock := f.clock
		capRing := f.capture
		f.mu.Unlock()
		if con == nil {
			continue
		}
		t0 := time.Now()
		replies, err := con.HandleDatagram(item.wire, clock)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for _, r := range replies {
			if capRing.Enabled() {
				capRing.Tap(capture.DirUp, item.console, -1, r, clock)
			}
			// Console→server traffic may re-enter Send; it queues.
			if err := srv.HandleDatagram(item.console, r, clock); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		f.metrics.delivered.Inc()
		f.metrics.deliverSeconds.Observe(time.Since(t0))
	}
}

// lookup fetches the console/server pair for a desk.
func (f *Fabric) lookup(id string) (*Console, SessionHandler, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	con, ok := f.consoles[id]
	if !ok {
		return nil, nil, fmt.Errorf("slim: no console %q on fabric", id)
	}
	return con, f.servers[id], nil
}

// Boot powers on a console: it sends Hello (with the card token, if any)
// to its server, which attaches or creates the user's session and repaints.
func (f *Fabric) Boot(id, cardToken string) error {
	con, srv, err := f.lookup(id)
	if err != nil {
		return err
	}
	hello := con.Hello()
	hello.CardToken = cardToken
	return srv.Handle(id, hello, f.Now())
}

// Desk is one fabric desk viewed as an input device: the InputSink for
// the console attached under an ID. The zero value is unusable; get one
// from Fabric.Desk.
type Desk struct {
	inputPort
}

// Desk returns the InputSink for a desk ID. Lookups happen per event, so
// a Desk stays valid across re-attachments.
func (f *Fabric) Desk(id string) Desk {
	deliver := func(msg Message) error {
		_, srv, err := f.lookup(id)
		if err != nil {
			return err
		}
		return srv.Handle(id, msg, f.Now())
	}
	return Desk{inputPort{
		deliver: deliver,
		card: func(token string) error {
			con, srv, err := f.lookup(id)
			if err != nil {
				return err
			}
			return srv.Handle(id, con.InsertCard(token), f.Now())
		},
	}}
}

// InsertCard presents a smart card at a desk, moving the owner's session
// there (§1.1's mobility model).
func (f *Fabric) InsertCard(id, token string) error { return f.Desk(id).InsertCard(token) }

// SendKey delivers a keystroke from a desk to its server.
func (f *Fabric) SendKey(id string, code uint16, down bool) error {
	return f.Desk(id).SendKey(code, down)
}

// SendPointer delivers a mouse update from a desk to its server.
func (f *Fabric) SendPointer(id string, x, y uint16, buttons uint8) error {
	return f.Desk(id).SendPointer(x, y, buttons)
}

// TypeString types a string at a desk (press + release per character).
func (f *Fabric) TypeString(id, s string) error { return f.Desk(id).TypeString(s) }

// Console returns the console attached at a desk.
func (f *Fabric) Console(id string) (*Console, error) {
	con, _, err := f.lookup(id)
	return con, err
}
