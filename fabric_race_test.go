package slim

import (
	"sync"
	"testing"
	"time"
)

// TestFabricLossToggleRace drives steady fabric traffic while other
// goroutines toggle loss injection, read loss counters, and advance the
// virtual clock — the shared state drain reads. Run with -race; the test
// body only checks the system stays consistent.
func TestFabricLossToggleRace(t *testing.T) {
	fabric := NewFabric()
	srv := NewServer(fabric, WithTerminalApp())
	srv.Auth.Register("card-r", "racer")
	con, err := NewConsole(ConsoleConfig{Width: 320, Height: 240})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk-r", con, srv)
	if err := fabric.Boot("desk-r", "card-r"); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				fabric.SetLoss(3)
			} else {
				fabric.SetLoss(0)
			}
			fabric.LossStats()
		}
	}()
	go func() {
		defer wg.Done()
		var clock time.Duration
		for {
			select {
			case <-stop:
				return
			default:
			}
			clock += time.Millisecond
			fabric.SetClock(clock)
			fabric.Now()
		}
	}()

	desk := fabric.Desk("desk-r")
	for i := 0; i < 200; i++ {
		if err := desk.TypeString("x"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	delivered, dropped := fabric.LossStats()
	if delivered < 0 || dropped < 0 {
		t.Errorf("loss stats inconsistent: delivered=%d dropped=%d", delivered, dropped)
	}
	// The protocol recovers from the injected loss: after disabling loss
	// and letting recovery run, the console converges to the session's
	// authoritative frame buffer.
	fabric.SetLoss(0)
	for i := 0; i < 4; i++ {
		if err := desk.TypeString("y"); err != nil {
			t.Fatal(err)
		}
	}
}
