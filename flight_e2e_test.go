package slim

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"slim/internal/netsim"
	"slim/internal/obs"
	"slim/internal/obs/flight"
	"slim/internal/protocol"
)

// slowTransport interposes a simulated slow link between server and
// fabric: once armed, each display datagram is held for the link's
// serialization time before delivery, so a keystroke's paint arrives later
// than the paper's 150 ms annoyance bound and the flight recorder must
// notice. Control traffic is never delayed (boot stays fast).
type slowTransport struct {
	*Fabric
	link  netsim.Link
	armed atomic.Bool
}

func (s *slowTransport) Send(console string, wire []byte) error {
	if s.armed.Load() && isDisplayDatagram(wire) {
		time.Sleep(s.link.SerializeTime(len(wire)))
	}
	return s.Fabric.Send(console, wire)
}

// TestFlightBreachEndToEnd drives a real session through the in-process
// fabric with an induced slow link, and asserts the whole flight-recorder
// contract: the >150 ms paint trips a breach, the breach writes a dump
// whose events form a causal chain linking the input to its paint via
// protocol sequence numbers, and /debug/trace serves the same events as
// loadable Perfetto JSON.
func TestFlightBreachEndToEnd(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	rec := flight.New(obs.DomainWall).Instrument(reg)
	dir := t.TempDir()
	rec.SetDumpDir(dir)

	fabric := NewFabric()
	// 2400 bps: a ~60-byte glyph datagram plus frame overhead serializes
	// in ~340 ms, comfortably past the 150 ms default threshold.
	slow := &slowTransport{Fabric: fabric, link: netsim.Link{Bps: 2400}}
	srv := NewServer(slow, WithTerminalApp()).Instrument(reg).WithFlight(rec)
	srv.Auth.Register("card-alice", "alice")

	con, err := NewConsole(ConsoleConfig{Width: 320, Height: 240, Obs: reg, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk-1", con, srv)
	if err := fabric.Boot("desk-1", "card-alice"); err != nil {
		t.Fatal(err)
	}
	sess := srv.SessionByUser("alice")
	if sess == nil || sess.FlightLog() == nil {
		t.Fatal("session flight log not wired")
	}

	// One keystroke over the slow link. The release renders nothing, so
	// only the press can breach.
	slow.armed.Store(true)
	if err := srv.Handle("desk-1", &protocol.KeyEvent{Code: 'a', Down: true}, 0); err != nil {
		t.Fatal(err)
	}
	slow.armed.Store(false)

	if n := rec.BreachCount(); n < 1 {
		t.Fatalf("breach count = %d, want >= 1", n)
	}
	snap := reg.Snapshot()
	if snap.Counters["slim_flight_breaches_total"] < 1 {
		t.Error("breach counter not published to the registry")
	}
	if snap.Gauges["slim_flight_last_breach_unix_ms"] <= 0 {
		t.Error("last-breach gauge not published")
	}

	// The dump must exist and hold the causal chain.
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-sess*.json"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no breach dump written to %s (err=%v)", dir, err)
	}
	f, err := os.Open(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	d, err := flight.ReadDump(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if d.Session != sess.ID {
		t.Errorf("dump session = %d, want %d", d.Session, sess.ID)
	}
	if d.LatencyNs < d.ThresholdNs {
		t.Errorf("dump latency %d below threshold %d", d.LatencyNs, d.ThresholdNs)
	}

	// Walk the chain: the keystroke's input-chain ID must connect INPUT →
	// ENCODE → TX → RX → PAINT, with the encode's sequence number linking
	// the stages across the server/console boundary.
	var chain uint64
	for _, ev := range d.Events {
		if ev.Kind == flight.EvInput && ev.Cmd == protocol.TypeKey && ev.A == 'a' {
			chain = ev.Cause
		}
	}
	if chain == 0 {
		t.Fatalf("dump has no INPUT event for the keystroke: %+v", d.Events)
	}
	seqs := make(map[flight.Kind]map[uint32]bool)
	for _, ev := range d.Events {
		if ev.Cause != chain {
			continue
		}
		if seqs[ev.Kind] == nil {
			seqs[ev.Kind] = make(map[uint32]bool)
		}
		seqs[ev.Kind][ev.Seq] = true
	}
	var linked bool
	for seq := range seqs[flight.EvEncode] {
		if seqs[flight.EvTx][seq] && seqs[flight.EvRx][seq] && seqs[flight.EvPaint][seq] {
			linked = true
		}
	}
	if !linked {
		t.Errorf("no sequence number links ENCODE→TX→RX→PAINT in chain %d: %v", chain, seqs)
	}
	var breachMarked bool
	for _, ev := range d.Events {
		if ev.Kind == flight.EvBreach && ev.A >= ev.B {
			breachMarked = true
		}
	}
	if !breachMarked {
		t.Error("dump ring has no BREACH marker event")
	}

	// /debug/trace must serve the same session as valid Perfetto JSON.
	ts := httptest.NewServer(rec.TraceHandler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/trace?last=1m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  uint32  `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pf); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	if pf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", pf.DisplayTimeUnit)
	}
	var slices, flows int
	for _, ev := range pf.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
		case "s", "f":
			flows++
		}
	}
	if slices < 5 || flows < 2 {
		t.Errorf("Perfetto export has %d slices and %d flow events, want >=5 and >=2", slices, flows)
	}
	if resp.Header.Get("Content-Type") != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", resp.Header.Get("Content-Type"))
	}

	// A bad query is rejected, not 500'd.
	bad, err := ts.Client().Get(ts.URL + "/debug/trace?session=zebra")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Errorf("bad session query status = %d, want 400", bad.StatusCode)
	}
}

// TestFlightDisabledRecorderStaysCold: with the recorder disabled the
// whole pipeline must record nothing and dump nothing, whatever the
// latency.
func TestFlightDisabledRecorderStaysCold(t *testing.T) {
	reg := obs.NewRegistry(obs.DomainWall)
	rec := flight.New(obs.DomainWall).Instrument(reg)
	rec.SetEnabled(false)
	rec.SetDumpDir(t.TempDir())
	rec.SetThreshold(time.Nanosecond) // everything would breach if armed

	fabric := NewFabric()
	srv := NewServer(fabric, WithTerminalApp()).Instrument(reg).WithFlight(rec)
	srv.Auth.Register("card-bob", "bob")
	con, err := NewConsole(ConsoleConfig{Width: 320, Height: 240, Obs: reg, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk-2", con, srv)
	if err := fabric.Boot("desk-2", "card-bob"); err != nil {
		t.Fatal(err)
	}
	if err := fabric.TypeString("desk-2", "quiet"); err != nil {
		t.Fatal(err)
	}

	sess := srv.SessionByUser("bob")
	if evs := rec.Events(sess.ID, 0); len(evs) != 0 {
		t.Errorf("disabled recorder captured %d events", len(evs))
	}
	if rec.BreachCount() != 0 {
		t.Errorf("disabled recorder counted %d breaches", rec.BreachCount())
	}
	files, _ := filepath.Glob(filepath.Join(rec.DumpDir(), "*"))
	if len(files) != 0 {
		t.Errorf("disabled recorder wrote dumps: %v", files)
	}
}
