// Benchmarks: one testing.B per table and figure in the paper's evaluation
// (§4–§7), plus ablations for the design choices called out in DESIGN.md.
// Each bench reports the experiment's headline number through
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the paper's
// results alongside the usual ns/op. cmd/slimbench prints the full tables.
package slim_test

import (
	"sync"
	"testing"
	"time"

	"slim"
	"slim/internal/core"
	"slim/internal/experiments"
	"slim/internal/fb"
	"slim/internal/netsim"
	"slim/internal/protocol"
	"slim/internal/video"
	"slim/internal/workload"
	"slim/internal/xproto"
)

var (
	corpusOnce sync.Once
	corpus     *experiments.Corpus
)

// benchCorpus returns a shared small user-study corpus (2 users x 3 min per
// application; slimbench runs the paper-scale version).
func benchCorpus() *experiments.Corpus {
	corpusOnce.Do(func() {
		corpus = experiments.NewCorpus(experiments.Config{
			Users: 2, Duration: 3 * time.Minute, Seed: 1999,
		})
		for _, app := range workload.Apps {
			corpus.Study(app) // generate outside the timed region
		}
	})
	return corpus
}

// BenchmarkTable4_ResponseTime measures the §4.1 echo path — keystroke in,
// glyph rendered on the console — over the in-process fabric, and reports
// the modelled Sun Ray RTT (paper: 550 µs over a 100 Mbps IF).
func BenchmarkTable4_ResponseTime(b *testing.B) {
	fabric := slim.NewFabric()
	srv := slim.NewServer(fabric, slim.WithTerminalApp())
	srv.Auth.Register("card", "u")
	con, err := slim.NewConsole(slim.ConsoleConfig{Width: 640, Height: 480})
	if err != nil {
		b.Fatal(err)
	}
	fabric.Attach("desk", con, srv)
	if err := fabric.Boot("desk", "card"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fabric.SendKey("desk", uint16('a'+i%26), true); err != nil {
			b.Fatal(err)
		}
		if err := fabric.SendKey("desk", uint16('a'+i%26), false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Modelled 100 Mbps fabric RTT for the same path (the 550 µs row).
	link := &netsim.Link{Bps: netsim.Rate100Mbps, Prop: 20 * time.Microsecond}
	costs := core.SunRay1Costs()
	glyph := &protocol.Bitmap{Rect: protocol.Rect{W: 8, H: 16}, Bits: make([]byte, 16)}
	model := link.SerializeTime(15) + link.Prop + 150*time.Microsecond +
		link.SerializeTime(protocol.WireSize(glyph)) + link.Prop + costs.ServiceTime(glyph)
	b.ReportMetric(float64(model.Microseconds()), "model-rtt-µs")
}

// BenchmarkTable4_X11perf runs the x11perf-style suite once per iteration
// through the full encode→wire→decode→render pipeline and reports the
// no-IF/with-IF composite ratio (paper: 7.505/3.834 ≈ 1.96).
func BenchmarkTable4_X11perf(b *testing.B) {
	enc := core.NewEncoder(1280, 1024)
	noWire := core.NewEncoder(1280, 1024)
	noWire.SkipWire = true
	screen := fb.New(1280, 1024)
	suite := xproto.Suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, op := range suite {
			dgs, err := enc.Encode(op.Build(i))
			if err != nil {
				b.Fatal(err)
			}
			for _, d := range dgs {
				_, msg, _, err := protocol.Decode(d.Wire)
				if err != nil {
					b.Fatal(err)
				}
				if err := screen.Apply(msg); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := noWire.Encode(op.Build(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable5_ProtocolCosts exercises the console decode path for each
// Table 1 command at a representative size; slimbench -run table5 prints
// the fitted startup/per-pixel model next to the Sun Ray 1 numbers.
func BenchmarkTable5_ProtocolCosts(b *testing.B) {
	screen := fb.New(512, 512)
	pix := make([]protocol.Pixel, 64*64)
	for i := range pix {
		pix[i] = protocol.Pixel(i)
	}
	data, err := fb.EncodeCSCS(pix, 64, 64, protocol.CSCS12)
	if err != nil {
		b.Fatal(err)
	}
	msgs := []protocol.Message{
		&protocol.Set{Rect: protocol.Rect{W: 64, H: 64}, Pixels: pix},
		&protocol.Bitmap{Rect: protocol.Rect{W: 64, H: 64}, Bits: make([]byte, 8*64)},
		&protocol.Fill{Rect: protocol.Rect{W: 64, H: 64}, Color: 1},
		&protocol.Copy{Rect: protocol.Rect{W: 64, H: 64}, DstX: 8, DstY: 8},
		&protocol.CSCS{Src: protocol.Rect{W: 64, H: 64}, Dst: protocol.Rect{W: 64, H: 64}, Format: protocol.CSCS12, Data: data},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			if err := screen.Apply(m); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(5*64*64*b.N)/b.Elapsed().Seconds()/1e6, "Mpx/s")
}

// BenchmarkFigure2_InputRates regenerates the input-event frequency CDFs
// and reports the >28 Hz tail (paper: <1%).
func BenchmarkFigure2_InputRates(b *testing.B) {
	c := benchCorpus()
	var tail float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure2(c)
		tail = 1 - series[0].CDF.At(28)
	}
	b.ReportMetric(tail*100, "pct>28Hz")
}

// BenchmarkFigure3_PixelsPerEvent regenerates the pixels-per-event CDFs and
// reports the fraction of events under 10 Kpx (paper: ~50%).
func BenchmarkFigure3_PixelsPerEvent(b *testing.B) {
	c := benchCorpus()
	var under float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure3(c)
		under = series[0].CDF.At(10_000)
	}
	b.ReportMetric(under*100, "pct<10Kpx")
}

// BenchmarkFigure4_CommandEfficiency regenerates the per-command
// compression decomposition and reports Photoshop's factor (paper: ~2x).
func BenchmarkFigure4_CommandEfficiency(b *testing.B) {
	c := benchCorpus()
	var comp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure4(c)
		comp = rows[0].Compression
	}
	b.ReportMetric(comp, "photoshop-compression-x")
}

// BenchmarkFigure5_BytesPerEvent regenerates the bytes-per-event CDFs and
// reports the Photoshop >10 KB tail (paper: ~25%).
func BenchmarkFigure5_BytesPerEvent(b *testing.B) {
	c := benchCorpus()
	var tail float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure5(c)
		tail = 1 - series[0].CDF.At(10_000)
	}
	b.ReportMetric(tail*100, "pct>10KB")
}

// BenchmarkFigure6_ScaledBandwidth replays the Netscape trace over the five
// constrained fabrics and reports the 1 Mbps median added delay.
func BenchmarkFigure6_ScaledBandwidth(b *testing.B) {
	c := benchCorpus()
	var p50 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure6(c)
		p50 = series[2].Delays.Percentile(0.5)
	}
	b.ReportMetric(p50*1e3, "1Mbps-p50-ms")
}

// BenchmarkFigure7_ServiceTimes replays the command logs through the Sun
// Ray 1 cost model and reports the fraction of updates under 50 ms
// (paper: ~80%).
func BenchmarkFigure7_ServiceTimes(b *testing.B) {
	c := benchCorpus()
	var under float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := experiments.Figure7(c)
		under = series[0].CDF.At(0.050)
	}
	b.ReportMetric(under*100, "pct<50ms")
}

// BenchmarkFigure8_AvgBandwidth recomputes the X/SLIM/raw comparison and
// reports SLIM's Photoshop bandwidth.
func BenchmarkFigure8_AvgBandwidth(b *testing.B) {
	c := benchCorpus()
	var mbps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure8(c)
		mbps = rows[0].SlimMbps
	}
	b.ReportMetric(mbps, "photoshop-Mbps")
}

// BenchmarkFigure9_CPUSharing runs one processor-sharing sweep point
// (12 Netscape users + yardstick, 1 CPU, 20 simulated seconds) per
// iteration and reports the added latency (paper knee: ~100 ms at 12–14).
func BenchmarkFigure9_CPUSharing(b *testing.B) {
	c := benchCorpus()
	var added time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9(c, workload.Netscape, []int{12}, 20*time.Second)
		added = r.Points[0].AvgAdded
	}
	b.ReportMetric(float64(added.Milliseconds()), "added-ms-at-12-users")
}

// BenchmarkFigure10_SMPScaling runs the 4-CPU Netscape point at 10
// users/CPU per iteration (paper: multiprocessors pool better than 1 CPU).
func BenchmarkFigure10_SMPScaling(b *testing.B) {
	c := benchCorpus()
	var added time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := experiments.Figure10(c, []int{4}, []int{10}, 20*time.Second)
		added = rs[0].Points[0].AvgAdded
	}
	b.ReportMetric(float64(added.Milliseconds()), "added-ms-40users-4cpu")
}

// BenchmarkFigure11_IFSharing runs one shared-fabric point (130 Netscape
// users at paper-density traffic) per iteration and reports the yardstick
// RTT (paper knee: ~30 ms at 130–140 users).
func BenchmarkFigure11_IFSharing(b *testing.B) {
	c := benchCorpus()
	var rtt time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure11(c, workload.Netscape, []int{130}, 5, 15*time.Second)
		rtt = r.Points[0].AvgRTT
	}
	b.ReportMetric(float64(rtt.Microseconds())/1e3, "rtt-ms-at-130-users")
}

// BenchmarkFigure12_CaseStudies synthesizes both sites' day-long profiles
// per iteration and reports the peak aggregate network (paper: <5 Mbps).
func BenchmarkFigure12_CaseStudies(b *testing.B) {
	sites := experiments.Figure12Sites()
	var peak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak = 0
		for j, site := range sites {
			for _, s := range experiments.Figure12(site, uint64(j)) {
				if s.NetMbps > peak {
					peak = s.NetMbps
				}
			}
		}
	}
	b.ReportMetric(peak, "peak-net-Mbps")
}

// BenchmarkMultimedia_MPEG2 streams real 720x480 frames at 6 bpp through
// the encode→decode path and reports the Sun Ray model's achieved rate
// (paper: 20 Hz, ~40 Mbps, server-bound).
func BenchmarkMultimedia_MPEG2(b *testing.B) {
	src := video.NewMPEG2(1)
	enc := core.NewEncoder(1280, 1024)
	screen := fb.New(1280, 1024)
	dst := protocol.Rect{X: 0, Y: 0, W: 720, H: 480}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := video.Stream(src, enc, screen, dst, protocol.CSCS6, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, mc := range experiments.Multimedia() {
		if mc.Name == "MPEG-II 720x480, 6bpp" {
			b.ReportMetric(mc.Report.AchievedHz, "sunray-Hz")
			b.ReportMetric(mc.Report.Mbps, "sunray-Mbps")
		}
	}
}

// BenchmarkMultimedia_NTSC streams 640x240 fields scaled 2x at the console
// (paper: 16–20 Hz single instance; 25–28 Hz console-bound at 4x).
func BenchmarkMultimedia_NTSC(b *testing.B) {
	src := video.NewNTSC(2)
	enc := core.NewEncoder(1280, 1024)
	screen := fb.New(1280, 1024)
	dst := protocol.Rect{X: 0, Y: 0, W: 640, H: 480}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := video.Stream(src, enc, screen, dst, protocol.CSCS8, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, mc := range experiments.Multimedia() {
		if mc.Name == "NTSC 4x 320x240" {
			b.ReportMetric(mc.Report.AchievedHz, "sunray-4x-Hz")
		}
	}
}

// BenchmarkMultimedia_Quake renders, palette-translates, and streams game
// frames at 5 bpp (paper: 18–21 Hz at 640x480; 28–34 Hz at 480x360).
func BenchmarkMultimedia_Quake(b *testing.B) {
	src := video.NewQuake(480, 360, 3)
	enc := core.NewEncoder(1280, 1024)
	screen := fb.New(1280, 1024)
	dst := protocol.Rect{X: 0, Y: 0, W: 480, H: 360}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := video.Stream(src, enc, screen, dst, protocol.CSCS5, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, mc := range experiments.Multimedia() {
		if mc.Name == "Quake 480x360, 5bpp" {
			b.ReportMetric(mc.Report.AchievedHz, "sunray-Hz")
		}
	}
}

// BenchmarkEncoderOverhead measures the §5.5 claim on a short session:
// protocol generation vs total display-path time (paper: 1.7%).
func BenchmarkEncoderOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sess := workload.NewSession(workload.Netscape, i, 5)
		sess.Run(5 * time.Second)
	}
}

// BenchmarkExtension_VNCCompare replays a PIM session through the §8.3
// pull baseline at 10 Hz and reports VNC's mean update latency (SLIM's is
// microseconds on the same fabric).
func BenchmarkExtension_VNCCompare(b *testing.B) {
	var lat float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.CompareVNC(workload.PIM, 10, 3, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		lat = r.VNCLatency.Mean() * 1e3
	}
	b.ReportMetric(lat, "vnc-latency-ms")
}

// BenchmarkExtension_LowBandwidth frames a PIM session both ways and
// reports the batching savings at 128 Kbps (§5.4's proposed optimization).
func BenchmarkExtension_LowBandwidth(b *testing.B) {
	var saved float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.LowBandwidth(workload.PIM, netsim.Rate128Kbps, 3, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		saved = 100 * r.BytesSaved
	}
	b.ReportMetric(saved, "pct-bytes-saved")
}

// BenchmarkExtension_WMTraffic drives the window system through a
// management session and reports COPY's share of moved pixels.
func BenchmarkExtension_WMTraffic(b *testing.B) {
	var share float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.WMTraffic(2, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		share = 100 * r.CopyShare
	}
	b.ReportMetric(share, "copy-pixel-share-pct")
}

// BenchmarkExtension_QoS runs the §9 scheduler ablation at one overload
// point and reports the latency saved by interactive priority.
func BenchmarkExtension_QoS(b *testing.B) {
	c := benchCorpus()
	var fair, prio time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.QoSAblation(c, workload.Netscape, []int{16}, 15*time.Second)
		fair, prio = rows[0].Fair, rows[0].Prio
	}
	b.ReportMetric(float64(fair.Milliseconds()), "fair-added-ms")
	b.ReportMetric(float64(prio.Milliseconds()), "priority-added-ms")
}

// --- Ablations (DESIGN.md: design choices worth ablating) ---

// BenchmarkAblation_EncoderAnalysis models a screen-scraping display
// driver (it sees only pixels, like VNC — no semantic text/fill hints) and
// compares content analysis against SET-only lowering. This isolates the
// value of the FILL/BITMAP detection that Figure 4 relies on.
func BenchmarkAblation_EncoderAnalysis(b *testing.B) {
	// Scrape a rendered session screen into pixel-only ops.
	sess := workload.NewSession(workload.Netscape, 0, 9)
	sess.Run(20 * time.Second)
	screen := sess.Encoder.FB
	var scraped []core.Op
	for y := 0; y+64 <= screen.H; y += 64 {
		for x := 0; x+64 <= screen.W; x += 64 {
			r := protocol.Rect{X: x, Y: y, W: 64, H: 64}
			scraped = append(scraped, core.ImageOp{Rect: r, Pixels: screen.ReadRect(r)})
		}
	}
	encode := func(analyze bool) int64 {
		e := core.NewEncoder(screen.W, screen.H)
		e.AnalyzeImages = analyze
		for _, op := range scraped {
			if _, err := e.Encode(op); err != nil {
				b.Fatal(err)
			}
		}
		return e.Stats.TotalWireBytes()
	}
	var with, without int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with = encode(true)
		without = encode(false)
	}
	b.ReportMetric(float64(without)/float64(with), "set-only-blowup-x")
}

// BenchmarkAblation_CSCSFormats sweeps the five CSCS bit depths on the same
// frame, reporting bytes per frame at 5 bpp; quality-vs-bandwidth is the
// paper's §8.1 knob.
func BenchmarkAblation_CSCSFormats(b *testing.B) {
	src := video.NewMPEG2(7)
	frame := src.Next()
	formats := []protocol.CSCSFormat{protocol.CSCS16, protocol.CSCS12, protocol.CSCS8, protocol.CSCS6, protocol.CSCS5}
	var bytes5 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range formats {
			data, err := fb.EncodeCSCS(frame.Pixels, frame.W, frame.H, f)
			if err != nil {
				b.Fatal(err)
			}
			if f == protocol.CSCS5 {
				bytes5 = len(data)
			}
		}
	}
	b.ReportMetric(float64(bytes5), "bytes-per-frame-5bpp")
}

// BenchmarkAblation_LossRecovery compares targeted Nack recovery (repaint
// of the affected-region union, computed from the replay ring) against a
// blanket full-screen repaint (§2.2's recovery design space; either way,
// never stop-and-wait).
func BenchmarkAblation_LossRecovery(b *testing.B) {
	enc := core.NewEncoder(1280, 1024)
	for i := 0; i < 64; i++ {
		if _, err := enc.Encode(core.FillOp{
			Rect:  protocol.Rect{X: i * 8, Y: i * 8, W: 64, H: 64},
			Color: protocol.Pixel(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("nack-region", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Nack the most recent datagram, as a console would: recovery
			// itself emits datagrams, so chase the tail.
			seq := enc.LastSeq()
			if out := enc.HandleNack(protocol.Nack{From: seq, To: seq}); len(out) == 0 {
				b.Fatal("no recovery")
			}
		}
	})
	b.Run("full-repaint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := enc.RepaintAll(); len(out) == 0 {
				b.Fatal("no repaint")
			}
		}
	})
}

// BenchmarkAblation_BandwidthAllocator exercises the §7 sorted-grant
// algorithm with a mixed video+GUI session population.
func BenchmarkAblation_BandwidthAllocator(b *testing.B) {
	con, err := slim.NewConsole(slim.ConsoleConfig{Width: 1280, Height: 1024, TotalBps: 100_000_000})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A video stream, two GUI sessions, and an audio stream contend.
		reqs := []protocol.BandwidthRequest{
			{SessionID: 1, Bps: 60_000_000},
			{SessionID: 2, Bps: 1_000_000},
			{SessionID: 3, Bps: 2_000_000},
			{SessionID: 4, Bps: 80_000_000},
		}
		for _, r := range reqs {
			rr := r
			if _, err := con.Handle(uint32(i), &rr, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}
