package slim

import (
	"math/rand"
	"testing"
	"time"
)

// TestSystemSoak exercises the whole system at once: three consoles, two
// users hot-desking between them, a desktop application with windows
// opening/moving/closing, intermittent datagram loss on the fabric, and
// periodic application ticks. The invariant throughout: after any
// loss-free settling input, every attached console is pixel-identical to
// its session's authoritative frame buffer.
func TestSystemSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	fabric := NewFabric()
	srv := NewServer(fabric, WithDesktopApp())
	srv.Auth.Register("card-a", "ana")
	srv.Auth.Register("card-b", "ben")

	desks := []string{"d1", "d2", "d3"}
	consoles := map[string]*Console{}
	for _, d := range desks {
		con, err := NewConsole(ConsoleConfig{Width: 640, Height: 480, ReorderWindow: 2})
		if err != nil {
			t.Fatal(err)
		}
		consoles[d] = con
		fabric.Attach(d, con, srv)
		if err := fabric.Boot(d, ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := fabric.InsertCard("d1", "card-a"); err != nil {
		t.Fatal(err)
	}
	if err := fabric.InsertCard("d2", "card-b"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Tick(0); err != nil {
		t.Fatal(err)
	}

	deskOf := map[string]string{"card-a": "d1", "card-b": "d2"}
	userOf := map[string]string{"card-a": "ana", "card-b": "ben"}
	keys := []uint16{'a', 'q', ' ', '\n', KeyNewWindow, KeyCycleFocus, KeyNudgeRight, KeyNudgeDown, KeyCloseWindow}

	verify := func(step int) {
		t.Helper()
		for card, desk := range deskOf {
			sess := srv.SessionByUser(userOf[card])
			if sess == nil || sess.Console != desk {
				t.Fatalf("step %d: %s not on %s", step, userOf[card], desk)
			}
			if !consoles[desk].Framebuffer().Equal(sess.Encoder.FB) {
				t.Fatalf("step %d: console %s diverged from %s's session", step, desk, userOf[card])
			}
		}
	}

	for step := 0; step < 400; step++ {
		card := "card-a"
		if rng.Intn(2) == 0 {
			card = "card-b"
		}
		desk := deskOf[card]
		switch rng.Intn(10) {
		case 0: // hot-desk to a free console
			var free string
			for _, d := range desks {
				used := false
				for _, occ := range deskOf {
					if occ == d {
						used = true
					}
				}
				if !used {
					free = d
					break
				}
			}
			if free == "" {
				continue
			}
			if err := fabric.InsertCard(free, card); err != nil {
				t.Fatal(err)
			}
			deskOf[card] = free
		case 1: // a burst of lossy typing, then loss-free settling input
			fabric.SetLoss(5 + rng.Intn(5))
			for k := 0; k < 20; k++ {
				code := keys[rng.Intn(4)] // plain typing only under loss
				if err := fabric.SendKey(desk, code, true); err != nil {
					t.Fatal(err)
				}
				if err := fabric.SendKey(desk, code, false); err != nil {
					t.Fatal(err)
				}
			}
			fabric.SetLoss(0)
			// Settle: enough loss-free updates to flush any trailing gap
			// past the reorder window.
			for k := 0; k < 6; k++ {
				if err := fabric.SendKey(desk, 'z', true); err != nil {
					t.Fatal(err)
				}
				if err := fabric.SendKey(desk, 'z', false); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // tick the applications
			if err := srv.Tick(time.Duration(step) * 40 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		case 3: // click somewhere
			if err := fabric.SendPointer(desk, uint16(rng.Intn(640)), uint16(rng.Intn(480)), 1); err != nil {
				t.Fatal(err)
			}
		default: // normal interaction
			code := keys[rng.Intn(len(keys))]
			if err := fabric.SendKey(desk, code, true); err != nil {
				t.Fatal(err)
			}
			if err := fabric.SendKey(desk, code, false); err != nil {
				t.Fatal(err)
			}
		}
		verify(step)
	}

	// The soak must have actually exercised loss.
	if _, dropped := fabric.LossStats(); dropped == 0 {
		t.Error("soak never dropped a datagram")
	}
}
