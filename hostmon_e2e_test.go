package slim

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"slim/internal/obs"
	"slim/internal/obs/flight"
	"slim/internal/obs/hostmon"
	"slim/internal/obs/incident"
	"slim/internal/obs/slo"
)

// gcStressLink interposes host stress between server and fabric: when
// armed, each display datagram is preceded by a forced GC cycle and a
// stall, and followed — after the console has painted — by a monitor
// sample, so the recorded GC windows genuinely cover each breach's causal
// chain the way a background sampler would cover a real stop-the-world
// pause.
type gcStressLink struct {
	*Fabric
	mon     *hostmon.Monitor
	delayNs atomic.Int64
}

func (l *gcStressLink) Send(console string, wire []byte) error {
	stressed := l.delayNs.Load() > 0
	if stressed && isDisplayDatagram(wire) {
		runtime.GC()
		time.Sleep(time.Duration(l.delayNs.Load()))
	}
	err := l.Fabric.Send(console, wire)
	if stressed {
		runtime.GC()
		l.mon.SampleNow() // the stall window now spans through the paint
	}
	return err
}

// TestHostStressEndToEnd drives a real session over a CLEAN link while the
// host runtime is under GC stress, and asserts the full hostmon/incident
// contract: the SLO engine leaves OK, the flight recorder attributes the
// breaches to HOST (not to an innocent pipeline stage), and the incident
// engine writes one complete, rate-limited bundle on the first degraded
// transition.
func TestHostStressEndToEnd(t *testing.T) {
	const (
		target = 30 * time.Millisecond
		stall  = 60 * time.Millisecond // injected per display datagram
	)
	reg := obs.NewRegistry(obs.DomainWall)
	rec := flight.New(obs.DomainWall).Instrument(reg)
	rec.SetThreshold(target)
	rec.SetDumpGap(0)
	dumpDir := t.TempDir()
	rec.SetDumpDir(dumpDir)
	trk := slo.New(obs.DomainWall, slo.Config{
		Target: target,
		Short:  400 * time.Millisecond,
		Mid:    1600 * time.Millisecond,
		Long:   6400 * time.Millisecond,
	}).Instrument(reg)

	// The monitor shares the recorder's clock so its stall windows overlap
	// ring events directly. Any GC pause counts as evidence; CPU-stall
	// detection is parked so the verdict kind is deterministic.
	mon := hostmon.New(hostmon.Config{
		Clock:             rec.Clock,
		GCPauseThreshold:  time.Nanosecond,
		CPUStallThreshold: time.Hour,
	}).Instrument(reg)
	rec.SetHostEvidence(mon.Windows)
	defer rec.SetHostEvidence(nil)
	mon.SampleNow() // warm-up: the first tick's histogram delta is skipped
	mon.SampleNow()

	incDir := t.TempDir()
	eng := incident.New(incident.Config{
		Dir: incDir, MinGap: time.Minute, ProfileFallback: 10 * time.Millisecond,
	}, incident.Sources{
		SLO:       trk,
		Monitor:   mon,
		Registry:  reg,
		FlightDir: dumpDir,
	}).Instrument(reg)
	eng.Start()
	defer eng.Close()

	fabric := NewFabric()
	link := &gcStressLink{Fabric: fabric, mon: mon}
	srv := NewServer(link, WithTerminalApp()).Instrument(reg).WithFlight(rec).WithSLOTracker(trk)
	srv.Auth.Register("card-alice", "alice")
	con, err := NewConsole(ConsoleConfig{Width: 320, Height: 240, Obs: reg, Flight: rec})
	if err != nil {
		t.Fatal(err)
	}
	fabric.Attach("desk-1", con, srv)
	if err := fabric.Boot("desk-1", "card-alice"); err != nil {
		t.Fatal(err)
	}

	// Phase 1 — healthy host: keystrokes paint in microseconds.
	if err := fabric.TypeString("desk-1", "all quiet on the host"); err != nil {
		t.Fatal(err)
	}
	if st := trk.Status(); st.State != "OK" {
		t.Fatalf("healthy state = %s, want OK", st.State)
	}

	// Phase 2 — GC stress: every display datagram stalls behind forced GC
	// cycles. The link itself is clean (no loss, no delay injection on the
	// fabric), so any verdict blaming WIRE/ENCODE would be a
	// misattribution.
	link.delayNs.Store(int64(stall))
	deadline := time.Now().Add(5 * time.Second)
	var state string
	for time.Now().Before(deadline) {
		if err := fabric.TypeString("desk-1", "x"); err != nil {
			t.Fatal(err)
		}
		if state = trk.Status().State; state == "BREACHING" {
			break
		}
	}
	link.delayNs.Store(0)
	if state != "DEGRADED" && state != "BREACHING" {
		t.Fatalf("stressed state = %s, want DEGRADED or BREACHING", state)
	}

	// Attribution: at least 90% of the breach dumps must carry a HOST
	// verdict backed by gc evidence.
	dumps, err := filepath.Glob(filepath.Join(dumpDir, "flight-sess*.json"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no breach dumps in %s (err=%v)", dumpDir, err)
	}
	var host, total int
	for _, path := range dumps {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		d, rerr := flight.ReadDump(f)
		f.Close()
		if rerr != nil {
			t.Fatalf("%s: %v", path, rerr)
		}
		if d.Verdict == nil {
			t.Fatalf("%s has no verdict", path)
		}
		total++
		if d.Verdict.Stage == flight.StageHost {
			host++
			if !strings.Contains(d.Verdict.HostKind, "gc") {
				t.Errorf("%s: HOST verdict without gc evidence: kind=%q", path, d.Verdict.HostKind)
			}
			if len(d.HostWindows) == 0 {
				t.Errorf("%s: HOST verdict but no host windows in the dump", path)
			}
		}
	}
	if frac := float64(host) / float64(total); frac < 0.9 {
		t.Errorf("HOST verdicts = %d/%d (%.0f%%), want >= 90%%", host, total, 100*frac)
	}
	// The SLO blame counters agree.
	snap := reg.Snapshot()
	if snap.Counters[`slim_slo_blame_total{stage="host"}`] != int64(host) {
		t.Errorf("blame counter = %d, want %d",
			snap.Counters[`slim_slo_blame_total{stage="host"}`], host)
	}
	// The monitor published its runtime series.
	if snap.Counters["slim_runtime_samples_total"] == 0 ||
		snap.Counters[`slim_runtime_host_windows_total{kind="gc"}`] == 0 {
		t.Error("hostmon series not published")
	}

	// Incident bundle: the first OK->DEGRADED transition wrote exactly one
	// (MinGap keeps later transitions rate-limited), and it is complete.
	var bundles []*incident.Manifest
	bundleDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(bundleDeadline) {
		bundles, _ = incident.List(incDir)
		if len(bundles) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(bundles) != 1 {
		t.Fatalf("bundles = %d, want exactly 1 (rate-limited)", len(bundles))
	}
	m := bundles[0]
	if m.Trigger != "slo" || !strings.HasPrefix(m.Reason, "slo:OK->") {
		t.Errorf("bundle trigger = %s reason = %s, want slo OK-> transition", m.Trigger, m.Reason)
	}
	bdir := filepath.Join(incDir, m.Name)
	for _, want := range []string{
		"manifest.json", "heap.pprof", "goroutines.txt", "slo.json",
		"hostmon.json", "metrics.prom",
	} {
		if _, err := os.Stat(filepath.Join(bdir, want)); err != nil {
			t.Errorf("bundle missing %s: %v", want, err)
		}
	}
	// At least one flight dump rode along, and it re-summarizes offline
	// exactly the way `slimtrace incident` does.
	flightCopies, _ := filepath.Glob(filepath.Join(bdir, "flight", "flight-sess*.json"))
	if len(flightCopies) == 0 {
		t.Error("bundle carries no flight dumps")
	}
	if m2, err := incident.ReadManifest(bdir); err != nil || m2.Name != m.Name {
		t.Errorf("ReadManifest: %+v, %v", m2, err)
	}
	// No staging litter behind the published bundle.
	ents, _ := os.ReadDir(incDir)
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), ".stage-") {
			t.Errorf("staging dir %s left behind", ent.Name())
		}
	}

	// Terminate evicts the session's series; the profiler gauges are
	// process-wide and unaffected.
	if err := srv.Terminate("alice"); err != nil {
		t.Fatal(err)
	}
	if st := trk.Status(); len(st.Sessions) != 0 {
		t.Errorf("sessions after Terminate = %+v, want none", st.Sessions)
	}
}
